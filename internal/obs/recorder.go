package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// DefaultCap is the flight recorder's default ring capacity. At the
// instrumentation density of a supervised mission (a few hundred spans
// per sortie) this holds tens of sorties before the ring wraps.
const DefaultCap = 8192

// Recorder is the flight recorder: a fixed-capacity ring buffer of
// completed spans. When full, the oldest record is overwritten — the
// recorder keeps the most recent window, which is the window that
// matters when a sortie dies. All methods are safe for concurrent use.
type Recorder struct {
	epoch  time.Time
	nextID atomic.Uint64
	drops  atomic.Int64

	mu   sync.Mutex
	buf  []SpanRecord
	next int  // ring write index
	full bool // buf has wrapped at least once
}

// NewRecorder returns a recorder holding at most capacity completed
// spans; capacity <= 0 selects DefaultCap.
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCap
	}
	return &Recorder{
		epoch: time.Now(),
		buf:   make([]SpanRecord, 0, capacity),
	}
}

// now is the monotonic offset from the recorder's epoch in nanoseconds.
func (r *Recorder) now() int64 { return time.Since(r.epoch).Nanoseconds() }

// start opens a span; called only via obs.StartSpan.
func (r *Recorder) start(name string, parent uint64) *Span {
	s := &Span{
		parent:  parent,
		name:    name,
		startNs: r.now(),
	}
	s.sc = spanCtx{rec: r, id: r.nextID.Add(1)}
	return s
}

// push commits a completed record, evicting the oldest when full.
func (r *Recorder) push(rec SpanRecord) {
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, rec)
	} else {
		r.buf[r.next] = rec
		r.next = (r.next + 1) % len(r.buf)
		r.full = true
		r.drops.Add(1)
	}
	r.mu.Unlock()
}

// Len reports the number of records currently held.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// Dropped reports how many records were evicted because the ring was
// full; nonzero means Snapshot is a suffix of the true span stream.
func (r *Recorder) Dropped() int64 { return r.drops.Load() }

// Snapshot copies out the recorded spans, oldest first (by end time —
// spans are committed when they End, so a parent appears after its
// children). The returned slice is independent of the ring.
func (r *Recorder) Snapshot() []SpanRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SpanRecord, 0, len(r.buf))
	if r.full {
		out = append(out, r.buf[r.next:]...)
		out = append(out, r.buf[:r.next]...)
	} else {
		out = append(out, r.buf...)
	}
	return out
}
