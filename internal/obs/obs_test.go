package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestDisabledPathIsNoop(t *testing.T) {
	ctx := context.Background()
	ctx2, sp := StartSpan(ctx, "anything")
	if sp != nil {
		t.Fatal("StartSpan without a recorder must return a nil span")
	}
	if ctx2 != ctx {
		t.Fatal("disabled StartSpan must return the context unchanged")
	}
	// Every method on the nil span is a no-op, not a panic.
	sp.Str("k", "v").Int("i", 1).Float("f", 2).Bool("b", true).SetTrack(3)
	sp.End()
	sp.End()
	Event(ctx, "instant")
	if RecorderFrom(ctx) != nil {
		t.Fatal("RecorderFrom on a bare context must be nil")
	}
}

func TestSpanRecordingAndTree(t *testing.T) {
	rec := NewRecorder(0)
	ctx := WithRecorder(context.Background(), rec)
	if RecorderFrom(ctx) != rec {
		t.Fatal("RecorderFrom lost the recorder")
	}

	ctx1, root := StartSpan(ctx, "sortie")
	root.Int("sortie", 2)
	ctx2, child := StartSpan(ctx1, "read")
	child.Bool("ok", true)
	_, grand := StartSpan(ctx2, "relock")
	grand.Float("freq_hz", 920e6).End()
	child.End()
	// A sibling under the root after the first child ended.
	_, sib := StartSpan(ctx1, "checkpoint")
	sib.End()
	root.End()

	recs := rec.Snapshot()
	if len(recs) != 4 {
		t.Fatalf("recorded %d spans, want 4", len(recs))
	}
	// Records commit at End: relock, read, checkpoint, sortie.
	wantOrder := []string{"relock", "read", "checkpoint", "sortie"}
	for i, w := range wantOrder {
		if recs[i].Name != w {
			t.Fatalf("record %d is %q, want %q", i, recs[i].Name, w)
		}
	}

	tree, err := BuildTree(recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(tree.Roots) != 1 || tree.Roots[0].Name != "sortie" {
		t.Fatalf("roots %v", tree.Roots)
	}
	if err := tree.CheckEnclosure(); err != nil {
		t.Fatal(err)
	}
	relocks := tree.Find("relock")
	if len(relocks) != 1 {
		t.Fatalf("found %d relock spans", len(relocks))
	}
	if anc := tree.Ancestor(relocks[0], "sortie"); anc == nil || anc.Name != "sortie" {
		t.Fatal("relock must have a sortie ancestor")
	}
	if anc := tree.Ancestor(relocks[0], "read"); anc == nil {
		t.Fatal("relock's direct parent must be the read span")
	}
	if a, ok := relocks[0].Attr("freq_hz"); !ok || a.Num != 920e6 {
		t.Fatalf("relock attr %+v", relocks[0].Attrs)
	}
	if a, ok := tree.Find("sortie")[0].Attr("sortie"); !ok || a.Num != 2 {
		t.Fatal("sortie attr lost")
	}
}

func TestAttrsAfterEndDropped(t *testing.T) {
	rec := NewRecorder(0)
	ctx := WithRecorder(context.Background(), rec)
	_, sp := StartSpan(ctx, "s")
	sp.End()
	sp.Str("late", "x")
	sp.End() // idempotent: must not push twice
	recs := rec.Snapshot()
	if len(recs) != 1 {
		t.Fatalf("%d records, want 1", len(recs))
	}
	if len(recs[0].Attrs) != 0 {
		t.Fatalf("attr set after End leaked: %+v", recs[0].Attrs)
	}
}

func TestRingEviction(t *testing.T) {
	rec := NewRecorder(4)
	ctx := WithRecorder(context.Background(), rec)
	for i := 0; i < 10; i++ {
		_, sp := StartSpan(ctx, fmt.Sprintf("s%d", i))
		sp.End()
	}
	if rec.Len() != 4 {
		t.Fatalf("ring holds %d, want 4", rec.Len())
	}
	if rec.Dropped() != 6 {
		t.Fatalf("dropped %d, want 6", rec.Dropped())
	}
	recs := rec.Snapshot()
	want := []string{"s6", "s7", "s8", "s9"}
	for i, w := range want {
		if recs[i].Name != w {
			t.Fatalf("snapshot[%d] = %q, want %q (oldest-first)", i, recs[i].Name, w)
		}
	}
}

func TestHistogramSemantics(t *testing.T) {
	bounds := []float64{1, 2, 5}
	h := NewHistogram(bounds)
	// Bucket i counts v <= bounds[i]: 1ms lands in bucket 0 (v > bound
	// moves right, equality stays).
	h.Observe(1)
	h.Observe(1.5)
	h.Observe(4)
	h.Observe(100) // overflow
	snap := h.Snapshot()
	wantBuckets := []int64{1, 1, 1, 1}
	for i, w := range wantBuckets {
		if snap.Buckets[i] != w {
			t.Fatalf("bucket %d = %d, want %d (%+v)", i, snap.Buckets[i], w, snap.Buckets)
		}
	}
	if snap.Count != 4 {
		t.Fatalf("count %d", snap.Count)
	}
	// Quantiles are bucket upper bounds; overflow reports the largest
	// boundary — the exact semantics fleet's /metrics always had.
	if got := h.Quantile(0.50); got != 2 {
		t.Fatalf("p50 %v, want 2", got)
	}
	if got := h.Quantile(0.99); got != 5 {
		t.Fatalf("p99 %v, want 5 (overflow reports largest bound)", got)
	}
	if snap.Mean != (1+1.5+4+100)/4 {
		t.Fatalf("mean %v", snap.Mean)
	}

	// ObserveDuration keeps the microsecond-truncated integer sum.
	hd := NewHistogram(bounds)
	hd.ObserveDuration(1500 * time.Microsecond)
	hd.ObserveDuration(2500*time.Microsecond + 999*time.Nanosecond)
	if got, want := hd.Mean(), (1.5+2.5)/2; got != want {
		t.Fatalf("duration mean %v, want %v", got, want)
	}

	// Empty histogram renders zeros, not NaN.
	e := NewHistogram(bounds).Snapshot()
	if e.Count != 0 || e.Mean != 0 || e.P99 != 0 {
		t.Fatalf("empty snapshot %+v", e)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("relocks")
	c.Inc()
	c.Add(2)
	if r.Counter("relocks") != c {
		t.Fatal("counter identity not stable")
	}
	g := r.Gauge("queue_depth")
	g.Set(7.5)
	h := r.Histogram("lat", []float64{1, 10})
	h.Observe(3)
	if r.Histogram("lat", []float64{99}) != h {
		t.Fatal("histogram identity not stable")
	}

	snap := r.Snapshot()
	if snap.Counters["relocks"] != 3 {
		t.Fatalf("counters %+v", snap.Counters)
	}
	if snap.Gauges["queue_depth"] != 7.5 {
		t.Fatalf("gauges %+v", snap.Gauges)
	}
	if snap.Histograms["lat"].Count != 1 {
		t.Fatalf("histograms %+v", snap.Histograms)
	}
	if _, err := json.Marshal(snap); err != nil {
		t.Fatal(err)
	}
}

func TestTraceEventRoundTrip(t *testing.T) {
	rec := NewRecorder(0)
	ctx := WithRecorder(context.Background(), rec)
	ctx1, root := StartSpan(ctx, "fleet.batch")
	root.Str("region", "corridor-east").Int("size", 2)
	_, a := StartSpan(ctx1, "runtime.sortie")
	a.Bool("aborted", false).SetTrack(2)
	a.End()
	root.End()

	recs := rec.Snapshot()
	data, err := EncodeTrace(recs)
	if err != nil {
		t.Fatal(err)
	}
	// The document must be a valid trace_event file shape.
	var tf TraceFile
	if err := json.Unmarshal(data, &tf); err != nil {
		t.Fatal(err)
	}
	if len(tf.TraceEvents) != 2 || tf.TraceEvents[0].Ph != "X" || tf.TraceEvents[0].PID != tracePID {
		t.Fatalf("trace events %+v", tf.TraceEvents)
	}

	back, err := ParseTrace(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(recs) {
		t.Fatalf("round-trip %d records, want %d", len(back), len(recs))
	}
	origTree, err := BuildTree(recs)
	if err != nil {
		t.Fatal(err)
	}
	backTree, err := BuildTree(back)
	if err != nil {
		t.Fatal(err)
	}
	if origTree.Shape() != backTree.Shape() {
		t.Fatalf("shape changed:\n%s\nvs\n%s", origTree.Shape(), backTree.Shape())
	}
	sortie := backTree.Find("runtime.sortie")[0]
	if sortie.Track != 2 {
		t.Fatalf("track lost: %d", sortie.Track)
	}
	if a, ok := sortie.Attr("aborted"); !ok || a.Kind != KindBool || a.Num != 0 {
		t.Fatalf("bool attr lost: %+v", sortie.Attrs)
	}
	reg, ok := backTree.Find("fleet.batch")[0].Attr("region")
	if !ok || reg.Str != "corridor-east" {
		t.Fatal("string attr lost")
	}
}

func TestShapeIgnoresSiblingOrderAndTimes(t *testing.T) {
	mk := func(order []int) string {
		recs := []SpanRecord{
			{ID: 1, Name: "root", StartNs: 0, DurNs: 100},
			{ID: 2, Parent: 1, Name: "stripe", StartNs: int64(10 * order[0]), DurNs: 5},
			{ID: 3, Parent: 1, Name: "stripe", StartNs: int64(10 * order[1]), DurNs: 5},
			{ID: 4, Parent: 1, Name: "solve", StartNs: int64(10 * order[2]), DurNs: 5},
		}
		tr, err := BuildTree(recs)
		if err != nil {
			t.Fatal(err)
		}
		return tr.Shape()
	}
	if mk([]int{1, 2, 3}) != mk([]int{3, 1, 2}) {
		t.Fatal("shape must not depend on sibling timing/order")
	}
}

func TestBuildTreeRejectsDuplicateIDs(t *testing.T) {
	_, err := BuildTree([]SpanRecord{{ID: 1, Name: "a"}, {ID: 1, Name: "b"}})
	if err == nil {
		t.Fatal("duplicate IDs must be rejected")
	}
}

// TestConcurrentRecording exercises the ring buffer, registry, and span
// lifecycle from many goroutines; its real assertion is the repo-wide
// -race gate.
func TestConcurrentRecording(t *testing.T) {
	rec := NewRecorder(64)
	reg := NewRegistry()
	ctx := WithRecorder(context.Background(), rec)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := reg.Counter("spans")
			h := reg.Histogram("lat", []float64{1, 10, 100})
			for i := 0; i < 200; i++ {
				sctx, sp := StartSpan(ctx, "worker")
				sp.Int("g", int64(g)).SetTrack(g)
				_, inner := StartSpan(sctx, "inner")
				inner.End()
				sp.End()
				c.Inc()
				h.Observe(float64(i % 7))
			}
		}(g)
	}
	wg.Wait()
	if rec.Len() != 64 {
		t.Fatalf("ring holds %d, want 64", rec.Len())
	}
	if got := rec.Dropped() + int64(rec.Len()); got != 8*200*2 {
		t.Fatalf("dropped+held = %d, want %d", got, 8*200*2)
	}
	if reg.Counter("spans").Load() != 1600 {
		t.Fatal("counter lost increments")
	}
	if _, err := BuildTree(rec.Snapshot()); err != nil {
		t.Fatal(err)
	}
}
