package fleet

import (
	"container/heap"
	"fmt"
	"sort"
	"time"
)

// Admission control: a bounded priority queue. The bound is the
// backpressure mechanism — when the queue is full, Submit fails
// immediately with ErrBacklog carrying a Retry-After estimate, and the
// caller (the HTTP layer turns this into 429 + Retry-After) is expected
// to come back later. Nothing in the service buffers without bound: a
// request is either in this queue, riding a sortie, or rejected.

// ErrBacklog is returned by Submit when the admission queue is full.
type ErrBacklog struct {
	// Depth is the queue depth at rejection time.
	Depth int
	// RetryAfter estimates when capacity will free up, derived from the
	// observed batch service time and the shard count.
	RetryAfter time.Duration
}

func (e ErrBacklog) Error() string {
	return fmt.Sprintf("fleet: admission queue full (%d deep); retry after %s", e.Depth, e.RetryAfter)
}

// ErrDraining is returned by Submit once a drain has begun.
type ErrDraining struct{}

func (ErrDraining) Error() string { return "fleet: scheduler is draining; not accepting work" }

// prioQueue orders missions by (priority desc, arrival seq asc). It is
// not goroutine-safe; the scheduler's mutex guards it.
type prioQueue struct{ items []*mission }

func (q *prioQueue) Len() int { return len(q.items) }

func (q *prioQueue) Less(i, j int) bool {
	a, b := q.items[i], q.items[j]
	if a.req.Priority != b.req.Priority {
		return a.req.Priority > b.req.Priority
	}
	return a.seq < b.seq
}

func (q *prioQueue) Swap(i, j int) { q.items[i], q.items[j] = q.items[j], q.items[i] }

func (q *prioQueue) Push(x any) { q.items = append(q.items, x.(*mission)) }

func (q *prioQueue) Pop() any {
	old := q.items
	n := len(old)
	m := old[n-1]
	old[n-1] = nil
	q.items = old[:n-1]
	return m
}

func (q *prioQueue) push(m *mission) { heap.Push(q, m) }

// pop removes and returns the highest-priority mission, or nil.
func (q *prioQueue) pop() *mission {
	if len(q.items) == 0 {
		return nil
	}
	return heap.Pop(q).(*mission)
}

// takeCompatible removes and returns up to max missions whose batch key
// matches key, in (priority, seq) order. Canceled entries are skipped
// (and left for the dispatcher to reap via pop).
func (q *prioQueue) takeCompatible(key string, max int) []*mission {
	if max <= 0 {
		return nil
	}
	var cand []*mission
	for _, m := range q.items {
		if !m.canceled && m.req.batchKey() == key {
			cand = append(cand, m)
		}
	}
	sort.Slice(cand, func(i, j int) bool { return less(cand[i], cand[j]) })
	if len(cand) > max {
		cand = cand[:max]
	}
	if len(cand) == 0 {
		return nil
	}
	taken := make(map[*mission]bool, len(cand))
	for _, m := range cand {
		taken[m] = true
	}
	kept := q.items[:0]
	for _, m := range q.items {
		if !taken[m] {
			kept = append(kept, m)
		}
	}
	for i := len(kept); i < len(q.items); i++ {
		q.items[i] = nil
	}
	q.items = kept
	heap.Init(q)
	return cand
}

func less(a, b *mission) bool {
	if a.req.Priority != b.req.Priority {
		return a.req.Priority > b.req.Priority
	}
	return a.seq < b.seq
}
