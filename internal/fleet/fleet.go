package fleet

import (
	"context"
	"fmt"
	"sync"
	"time"

	"rfly/internal/capture"
	"rfly/internal/obs"
	"rfly/internal/runtime"
)

// Config shapes the scheduler.
type Config struct {
	// Shards is the worker-pool size: how many sorties fly concurrently.
	Shards int
	// QueueCap bounds the admission queue; a full queue rejects with
	// ErrBacklog. Zero defaults to 16×Shards.
	QueueCap int
	// MaxBatch caps how many compatible requests one sortie serves.
	MaxBatch int
	// MaxTagsPerRequest bounds a single request's tag list.
	MaxTagsPerRequest int
	// Sorties and TicksPerSortie shape each service mission; the service
	// flies short missions so per-request latency stays bounded.
	Sorties        int
	TicksPerSortie int
	// Retry is the per-read retry policy every service mission uses.
	// Its jitter draws come from each shard's own deterministic stream,
	// which is what keeps the worker pool race-free (see
	// reader.RetryPolicy.JitterSlots).
	Retry RetryOverride
	// MaxMissionTime is a hard per-batch wall-clock bound applied even
	// when no member carries a deadline. Zero defaults to 30s.
	MaxMissionTime time.Duration
	// TraceCap bounds the per-batch flight-recorder ring (spans kept per
	// sortie trace). Zero uses obs.DefaultCap.
	TraceCap int
	// MaxReplicas / MaxReplicaBytes bound the node's replica store (the
	// checkpoints it holds on behalf of federation peers). Zeros default
	// to 256 replicas / 16 MiB.
	MaxReplicas     int
	MaxReplicaBytes int64
}

// RetryOverride optionally replaces the mission default retry policy.
type RetryOverride struct {
	Set                                               bool
	MaxRetries, BackoffSlots, MaxBackoff, JitterSlots int
}

func (c *Config) defaults() error {
	if c.Shards <= 0 {
		return fmt.Errorf("fleet: need a positive shard count, got %d", c.Shards)
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 16 * c.Shards
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8
	}
	if c.MaxTagsPerRequest <= 0 {
		c.MaxTagsPerRequest = 8
	}
	if c.Sorties <= 0 {
		c.Sorties = 1
	}
	if c.TicksPerSortie <= 0 {
		c.TicksPerSortie = 12
	}
	if c.MaxMissionTime <= 0 {
		c.MaxMissionTime = 30 * time.Second
	}
	if c.MaxReplicas <= 0 {
		c.MaxReplicas = 256
	}
	if c.MaxReplicaBytes <= 0 {
		c.MaxReplicaBytes = 16 << 20
	}
	return nil
}

// batchState tracks one in-flight sortie's membership so cancellation
// can propagate: when every member has been canceled, the batch context
// is canceled and the engine rolls back at the next tick.
type batchState struct {
	cancel context.CancelFunc
	live   int
}

// Scheduler owns the admission queue, the batcher, and the shard
// workers. Build with New, then call Start to launch the workers (the
// split lets tests and the experiments scenario pre-fill the queue so
// coalescing is deterministic).
type Scheduler struct {
	cfg    Config
	lessor *runtime.Lessor
	m      *Metrics

	// runCtx gates in-flight sorties: Drain leaves it alone (in-flight
	// work finishes), Stop cancels it.
	runCtx  context.Context
	runStop context.CancelFunc

	mu       sync.Mutex
	cond     *sync.Cond
	queue    prioQueue
	records  map[string]*mission
	seq      uint64
	started  bool
	draining bool
	// ewmaBatchMs is the smoothed batch service time feeding the
	// Retry-After estimate.
	ewmaBatchMs float64

	// replicas holds checkpoints this node keeps on behalf of
	// federation peers (it is never read by the local scheduler; a
	// coordinator fetches a replica back out to resume the mission on
	// this node after the primary dies).
	replicas *replicaStore

	// capReplicas holds peer missions' capture logs, replicated segment
	// by segment (the increments ride CaptureTail, not whole snapshots).
	capReplicas *replicaStore

	wg sync.WaitGroup
}

// New validates cfg and builds a stopped scheduler.
func New(cfg Config) (*Scheduler, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	lessor, err := runtime.NewLessor(cfg.Shards)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Scheduler{
		cfg:         cfg,
		lessor:      lessor,
		m:           newMetrics(cfg.Shards),
		runCtx:      ctx,
		runStop:     cancel,
		records:     make(map[string]*mission),
		replicas:    newReplicaStore(cfg.MaxReplicas, cfg.MaxReplicaBytes),
		capReplicas: newReplicaStore(cfg.MaxReplicas, cfg.MaxReplicaBytes),
	}
	s.cond = sync.NewCond(&s.mu)
	return s, nil
}

// Config returns the (defaulted) scheduler config.
func (s *Scheduler) Config() Config { return s.cfg }

// Metrics returns the live counter set.
func (s *Scheduler) Metrics() *Metrics { return s.m }

// Lessor exposes the engine lessor (the drain path reads its
// checkpoints).
func (s *Scheduler) Lessor() *runtime.Lessor { return s.lessor }

// Start launches the shard workers. Starting twice is a no-op.
func (s *Scheduler) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return
	}
	s.started = true
	for i := 0; i < s.cfg.Shards; i++ {
		s.wg.Add(1)
		go s.worker(i)
	}
}

// Submit admits a request. It returns the mission ID immediately; the
// caller polls Get (or waits on Done) for the outcome. A full queue
// fails fast with ErrBacklog; a draining scheduler with ErrDraining.
func (s *Scheduler) Submit(req Request) (string, error) {
	if err := req.validate(s.cfg.MaxTagsPerRequest); err != nil {
		return "", err
	}
	if len(req.Resume) > 0 {
		// Reject a corrupt or mismatched checkpoint at admission, not on
		// the shard: a dry-run Restore against the exact config the
		// mission would fly surfaces truncation, CRC damage, and config
		// drift as a 400, and the coordinator falls back to a fresh
		// same-seed run.
		if _, err := runtime.Restore(MissionConfig(s.cfg, req, 0), req.Resume); err != nil {
			return "", fmt.Errorf("fleet: resume checkpoint rejected: %w", err)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m.submitted.Add(1)
	if s.draining {
		s.m.draining.Add(1)
		return "", ErrDraining{}
	}
	if s.queue.Len() >= s.cfg.QueueCap {
		s.m.rejected.Add(1)
		return "", ErrBacklog{Depth: s.queue.Len(), RetryAfter: s.retryAfterLocked()}
	}
	s.seq++
	m := &mission{
		id:        fmt.Sprintf("m-%06d", s.seq),
		seq:       s.seq,
		req:       req,
		status:    StatusQueued,
		submitted: time.Now(),
		shard:     -1,
		done:      make(chan struct{}),
	}
	s.records[m.id] = m
	s.queue.push(m)
	s.m.accepted.Add(1)
	s.m.queueDepth.Store(int64(s.queue.Len()))
	s.cond.Signal()
	return m.id, nil
}

// retryAfterLocked estimates how long until a queue slot frees: the
// time for the shards to chew through the current backlog, floored at
// one second. Callers hold s.mu.
func (s *Scheduler) retryAfterLocked() time.Duration {
	batchMs := s.ewmaBatchMs
	if batchMs <= 0 {
		batchMs = 50 // cold-start guess, ~one small mission
	}
	perSlot := batchMs / float64(s.cfg.MaxBatch)
	est := time.Duration(float64(s.queue.Len()) * perSlot / float64(s.cfg.Shards) * float64(time.Millisecond))
	if est < time.Second {
		est = time.Second
	}
	return est.Round(time.Second)
}

// Get returns a snapshot of the mission record.
func (s *Scheduler) Get(id string) (View, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.records[id]
	if !ok {
		return View{}, false
	}
	return m.view(), true
}

// Trace returns the mission's flight-recorder spans: the trace of the
// batch sortie that served it, captured when the batch resolved. The
// second return distinguishes "unknown mission" and "no trace yet"
// (ok=false) from an empty-but-present trace. The slice is shared with
// other members of the same batch; callers must not mutate it.
func (s *Scheduler) Trace(id string) ([]obs.SpanRecord, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.records[id]
	if !ok || m.trace == nil {
		return nil, false
	}
	return m.trace, true
}

// Checkpoint returns the mission's latest published sortie-boundary
// checkpoint and how many sorties it covers. ok is false until the
// mission's engine has committed its first sortie (there is nothing to
// replicate before that; a fresh same-seed re-run is bit-identical
// anyway). The returned slice is the engine's own published blob;
// callers must not mutate it.
func (s *Scheduler) Checkpoint(id string) (data []byte, sortie int, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, okk := s.records[id]
	if !okk || m.ckpt == nil {
		return nil, 0, false
	}
	return m.ckpt, m.ckptSortie, true
}

// Capture returns the mission's latest published capture log and how
// many sorties it covers. ok is false until the mission's engine has
// committed a SAR-bearing sortie (inventory-only missions never publish
// one). The returned slice is the engine's own published snapshot;
// callers must not mutate it.
func (s *Scheduler) Capture(id string) (data []byte, sortie int, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, okk := s.records[id]
	if !okk || m.capture == nil {
		return nil, 0, false
	}
	return m.capture, m.capSortie, true
}

// CaptureTail returns the capture log's segments committed after
// afterSortie (negative → the full log, header included) plus the
// sortie count the full log covers. tail is nil when the replica at
// afterSortie is already current.
func (s *Scheduler) CaptureTail(id string, afterSortie int) (tail []byte, sortie int, ok bool) {
	data, sortie, ok := s.Capture(id)
	if !ok {
		return nil, 0, false
	}
	rd, err := capture.OpenLog(data)
	if err != nil {
		// The engine publishes only logs its own writer sealed; an
		// unreadable one here is a bug, not a caller error.
		return nil, 0, false
	}
	return rd.Tail(afterSortie), sortie, true
}

// PutCaptureReplica stores or extends a capture-log replica this node
// holds for a federation peer: after == 0 installs a complete log,
// after > 0 appends the raw segment tail to a replica held at exactly
// that sortie count (a mismatch rejects, and the sender re-syncs full).
func (s *Scheduler) PutCaptureReplica(id string, after, sortie int, data []byte) error {
	err := s.capReplicas.putCapture(id, after, sortie, data)
	if err == nil {
		s.m.capReplicaPuts.Add(1)
		held, bytes := s.capReplicas.stats()
		s.m.capReplicasHeld.Store(held)
		s.m.capReplicaBytes.Store(bytes)
	}
	return err
}

// GetCaptureReplica returns a held capture-log replica.
func (s *Scheduler) GetCaptureReplica(id string) (sortie int, data []byte, ok bool) {
	return s.capReplicas.get(id)
}

// DropCaptureReplica discards a held capture-log replica.
func (s *Scheduler) DropCaptureReplica(id string) bool {
	ok := s.capReplicas.drop(id)
	if ok {
		held, bytes := s.capReplicas.stats()
		s.m.capReplicasHeld.Store(held)
		s.m.capReplicaBytes.Store(bytes)
	}
	return ok
}

// PutReplica stores a checkpoint this node holds on behalf of a
// federation peer. It never inspects the bytes — a replica is opaque
// until a coordinator fetches it back to resume the mission here.
func (s *Scheduler) PutReplica(id string, sortie int, data []byte) error {
	err := s.replicas.put(id, sortie, data)
	if err == nil {
		s.m.replicaPuts.Add(1)
		held, bytes := s.replicas.stats()
		s.m.replicasHeld.Store(held)
		s.m.replicaBytes.Store(bytes)
	}
	return err
}

// GetReplica returns a held replica's sortie count and bytes.
func (s *Scheduler) GetReplica(id string) (sortie int, data []byte, ok bool) {
	return s.replicas.get(id)
}

// DropReplica discards a held replica, reporting whether it existed.
func (s *Scheduler) DropReplica(id string) bool {
	ok := s.replicas.drop(id)
	if ok {
		held, bytes := s.replicas.stats()
		s.m.replicasHeld.Store(held)
		s.m.replicaBytes.Store(bytes)
	}
	return ok
}

// Done returns a channel that closes when the mission reaches a
// terminal status (nil if the ID is unknown).
func (s *Scheduler) Done(id string) <-chan struct{} {
	s.mu.Lock()
	defer s.mu.Unlock()
	if m, ok := s.records[id]; ok {
		return m.done
	}
	return nil
}

// Cancel cancels a mission. A queued mission is dequeued lazily; for a
// running one, cancellation takes effect when every member of its batch
// has canceled (the sortie serves the remaining tenants otherwise). It
// reports whether the mission existed and was not already terminal.
func (s *Scheduler) Cancel(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.records[id]
	if !ok || m.status.Terminal() || m.canceled {
		return false
	}
	m.canceled = true
	if m.status == StatusQueued {
		s.finishLocked(m, StatusCanceled, nil, "canceled by client")
		return true
	}
	// Running: drop out of the batch; the last member out cancels the
	// sortie context. Status resolves when the batch returns.
	if m.batch != nil {
		m.batch.live--
		if m.batch.live <= 0 {
			m.batch.cancel()
		}
	}
	return true
}

// finishLocked moves a record to a terminal state. Callers hold s.mu.
func (s *Scheduler) finishLocked(m *mission, st Status, out *Outcome, errMsg string) {
	if m.status.Terminal() {
		return
	}
	m.status = st
	m.outcome = out
	m.errMsg = errMsg
	m.finished = time.Now()
	m.batch = nil
	switch st {
	case StatusDone:
		s.m.completed.Add(1)
	case StatusFailed:
		s.m.failed.Add(1)
	case StatusCanceled:
		s.m.canceled.Add(1)
	case StatusExpired:
		s.m.expired.Add(1)
	}
	if !m.submitted.IsZero() {
		s.m.e2e.ObserveDuration(m.finished.Sub(m.submitted))
	}
	close(m.done)
}

// Draining reports whether a drain has begun.
func (s *Scheduler) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain stops admission, cancels the queued backlog (a queued request
// has not flown; the client retries against the next instance), lets
// in-flight sorties finish and checkpoint, and waits for the workers to
// exit — bounded by ctx.
func (s *Scheduler) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	for {
		m := s.queue.pop()
		if m == nil {
			break
		}
		if !m.status.Terminal() {
			s.finishLocked(m, StatusCanceled, nil, "scheduler draining")
		}
	}
	s.m.queueDepth.Store(0)
	s.cond.Broadcast()
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("fleet: drain timed out with %d sorties in flight: %w",
			s.lessor.InFlight(), ctx.Err())
	}
}

// Stop hard-stops the scheduler: in-flight sorties are canceled (their
// engines roll back to the last sortie boundary) and the workers are
// drained.
func (s *Scheduler) Stop(ctx context.Context) error {
	s.runStop()
	return s.Drain(ctx)
}

// nextBatch blocks until work is available, then forms a batch: the
// best queued mission plus up to MaxBatch-1 compatible ones. It returns
// nil when the scheduler is draining and the queue is empty.
func (s *Scheduler) nextBatch() []*mission {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		for s.queue.Len() == 0 && !s.draining {
			s.cond.Wait()
		}
		if s.queue.Len() == 0 && s.draining {
			return nil
		}
		head := s.queue.pop()
		if head == nil {
			continue
		}
		if head.canceled || head.status.Terminal() {
			// Reaped lazily; Cancel already finished the record.
			s.m.queueDepth.Store(int64(s.queue.Len()))
			continue
		}
		if dl := head.req.Deadline; !dl.IsZero() && time.Now().After(dl) {
			s.finishLocked(head, StatusExpired, nil, "deadline passed while queued")
			s.m.queueDepth.Store(int64(s.queue.Len()))
			continue
		}
		batch := []*mission{head}
		if !head.req.exclusive() {
			batch = append(batch,
				s.queue.takeCompatible(head.req.batchKey(), s.cfg.MaxBatch-1)...)
		}
		s.m.queueDepth.Store(int64(s.queue.Len()))
		return batch
	}
}

// worker is one shard's dispatch loop.
func (s *Scheduler) worker(shard int) {
	defer s.wg.Done()
	for {
		batch := s.nextBatch()
		if batch == nil {
			return
		}
		s.runBatch(shard, batch)
	}
}
