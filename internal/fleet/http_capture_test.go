package fleet

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"rfly/internal/capture"
)

// sarServer runs a two-sortie SAR mission to completion and returns the
// test server, scheduler, and the finished mission's id and view.
func sarServer(t *testing.T) (*httptest.Server, *Scheduler, string, View) {
	t.Helper()
	cfg := fastConfig(1)
	cfg.Sorties = 2
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	t.Cleanup(func() { s.Stop(context.Background()) })
	ts := httptest.NewServer(NewHandler(s))
	t.Cleanup(ts.Close)

	resp := postMission(t, ts, SubmitRequest{
		Region: "dock", Tags: []TagInput{{ID: 4, X: 9, Y: 2.0, Z: 1.0}},
		Seed: 77, SARPoints: 6, Exclusive: true,
	})
	var sub SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	<-s.Done(sub.ID)
	v, _ := s.Get(sub.ID)
	if v.Status != StatusDone {
		t.Fatalf("mission ended %s: %s", v.Status, v.Err)
	}
	return ts, s, sub.ID, v
}

// TestHTTPCaptureDownloadAndTail: a finished SAR mission serves its full
// capture log, a ?after= segment tail, and an empty tail once current.
func TestHTTPCaptureDownloadAndTail(t *testing.T) {
	ts, _, id, _ := sarServer(t)

	get := func(url string, wantStatus int) CaptureResponse {
		t.Helper()
		resp, err := ts.Client().Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Fatalf("GET %s: status %d, want %d", url, resp.StatusCode, wantStatus)
		}
		var cr CaptureResponse
		if wantStatus == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
				t.Fatal(err)
			}
		}
		return cr
	}

	full := get(ts.URL+"/v1/missions/"+id+"/capture", http.StatusOK)
	if full.Sortie != 2 || full.CaptureB64 == "" || full.Tail {
		t.Fatalf("full capture response %+v", full)
	}
	blob, err := base64.StdEncoding.DecodeString(full.CaptureB64)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := capture.OpenLog(blob)
	if err != nil {
		t.Fatalf("served capture log does not decode: %v", err)
	}
	if rd.NumSegments() != 2 {
		t.Fatalf("served log has %d segments, want 2", rd.NumSegments())
	}

	// Tail past sortie 1: exactly the second segment's bytes, and
	// appending them to a sortie-1 prefix must re-decode.
	tail := get(ts.URL+"/v1/missions/"+id+"/capture?after=1", http.StatusOK)
	if !tail.Tail || tail.Sortie != 2 || tail.CaptureB64 == "" {
		t.Fatalf("tail response %+v", tail)
	}
	tb, err := base64.StdEncoding.DecodeString(tail.CaptureB64)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasSuffix(blob, tb) || len(tb) >= len(blob) {
		t.Fatal("tail bytes are not a proper suffix of the full log")
	}
	if _, err := capture.OpenLog(blob[:len(blob)-len(tb)]); err != nil {
		t.Fatalf("full log minus tail is not a sealed sortie-1 log: %v", err)
	}

	// Already current: empty tail.
	cur := get(ts.URL+"/v1/missions/"+id+"/capture?after=2", http.StatusOK)
	if !cur.Tail || cur.Sortie != 2 || cur.CaptureB64 != "" {
		t.Fatalf("current-tail response %+v", cur)
	}

	get(ts.URL+"/v1/missions/"+id+"/capture?after=-1", http.StatusBadRequest)
	get(ts.URL+"/v1/missions/nope/capture", http.StatusNotFound)
}

// TestHTTPReplay: the replay endpoint re-solves a finished mission from
// its capture log — bit-identical to the live solve at defaults, and
// still sane under a caller-chosen grid.
func TestHTTPReplay(t *testing.T) {
	ts, s, id, v := sarServer(t)
	if v.Outcome == nil || !v.Outcome.LocOK {
		t.Fatal("mission produced no localization")
	}

	replay := func(body string, wantStatus int) ReplayResponse {
		t.Helper()
		resp, err := ts.Client().Post(ts.URL+"/v1/missions/"+id+"/replay",
			"application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Fatalf("replay status %d, want %d", resp.StatusCode, wantStatus)
		}
		var rr ReplayResponse
		if wantStatus == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
				t.Fatal(err)
			}
		}
		return rr
	}

	// Empty body → live settings → bit-identical to the mission solve.
	live := replay("", http.StatusOK)
	if math.Float64bits(live.X) != math.Float64bits(v.Outcome.LocX) ||
		math.Float64bits(live.Y) != math.Float64bits(v.Outcome.LocY) {
		t.Fatalf("live replay (%v,%v) != mission solve (%v,%v)",
			live.X, live.Y, v.Outcome.LocX, v.Outcome.LocY)
	}
	if live.Segments != 2 || live.Records != 12 || live.Sortie != 2 {
		t.Fatalf("replay provenance %+v, want 2 segments / 12 records / sortie 2", live)
	}

	// Changed grid, robustness off: every capture integrates.
	wide := replay(`{"grid":0.5,"fine":0.2,"workers":2,"robust":false}`, http.StatusOK)
	if wide.Kept != wide.Total {
		t.Fatalf("non-robust replay rejected %d of %d", wide.Total-wide.Kept, wide.Total)
	}
	if math.Abs(wide.X-live.X) > 2 || math.Abs(wide.Y-live.Y) > 2 {
		t.Fatalf("coarse replay (%v,%v) far from live (%v,%v)", wide.X, wide.Y, live.X, live.Y)
	}

	if got := s.Metrics().Snapshot().Replays; got != 2 {
		t.Fatalf("replays counter %d, want 2", got)
	}

	// Unknown mission and malformed body.
	resp, err := ts.Client().Post(ts.URL+"/v1/missions/nope/replay", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown-mission replay status %d", resp.StatusCode)
	}
	resp.Body.Close()
	replay(`{"grid":"tiny"}`, http.StatusBadRequest)
}

// TestHTTPCaptureReplica: the capture-replica store over HTTP — full
// install, segment-tail extension, conflict on a mismatched base, and
// the GET/DELETE pair.
func TestHTTPCaptureReplica(t *testing.T) {
	ts, s, id, _ := sarServer(t)

	var full CaptureResponse
	resp, err := ts.Client().Get(ts.URL + "/v1/missions/" + id + "/capture")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&full); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	blob, _ := base64.StdEncoding.DecodeString(full.CaptureB64)

	// Split the served log at the sortie-1 boundary using the reader's
	// own tail computation.
	rd, err := capture.OpenLog(blob)
	if err != nil {
		t.Fatal(err)
	}
	tail := rd.Tail(1)
	prefix := blob[:len(blob)-len(tail)]

	put := func(id string, body CaptureReplicaPut, wantStatus int) {
		t.Helper()
		payload, _ := json.Marshal(body)
		req, _ := http.NewRequest(http.MethodPut, ts.URL+"/v1/capture-replicas/"+id, bytes.NewReader(payload))
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Fatalf("capture-replica put: status %d, want %d", resp.StatusCode, wantStatus)
		}
	}

	// Full install at sortie 1, then the incremental tail to sortie 2.
	put("fed-cap", CaptureReplicaPut{Sortie: 1,
		CaptureB64: base64.StdEncoding.EncodeToString(prefix)}, http.StatusOK)
	put("fed-cap", CaptureReplicaPut{After: 1, Sortie: 2,
		CaptureB64: base64.StdEncoding.EncodeToString(tail)}, http.StatusOK)

	// A second tail claiming the same base must conflict (replica is at
	// sortie 2 now) — the sender's cue to full-sync.
	put("fed-cap", CaptureReplicaPut{After: 1, Sortie: 2,
		CaptureB64: base64.StdEncoding.EncodeToString(tail)}, http.StatusConflict)

	// The held replica is byte-identical to the source log and decodes.
	gresp, err := ts.Client().Get(ts.URL + "/v1/capture-replicas/fed-cap")
	if err != nil {
		t.Fatal(err)
	}
	var held CaptureResponse
	if err := json.NewDecoder(gresp.Body).Decode(&held); err != nil {
		t.Fatal(err)
	}
	gresp.Body.Close()
	hb, _ := base64.StdEncoding.DecodeString(held.CaptureB64)
	if held.Sortie != 2 || !bytes.Equal(hb, blob) {
		t.Fatalf("held replica sortie %d, bytes equal %v", held.Sortie, bytes.Equal(hb, blob))
	}
	if _, err := capture.OpenLog(hb); err != nil {
		t.Fatalf("reassembled replica does not decode: %v", err)
	}

	snap := s.Metrics().Snapshot()
	if snap.CaptureReplicaPuts != 2 || snap.CaptureReplicasHeld != 1 || snap.CaptureReplicaBytes != int64(len(blob)) {
		t.Fatalf("capture replica metrics %+v", snap)
	}

	dreq, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/capture-replicas/fed-cap", nil)
	dresp, err := ts.Client().Do(dreq)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("capture-replica delete status %d", dresp.StatusCode)
	}
	dresp2, err := ts.Client().Do(dreq)
	if err != nil {
		t.Fatal(err)
	}
	dresp2.Body.Close()
	if dresp2.StatusCode != http.StatusNotFound {
		t.Fatalf("second delete status %d, want 404", dresp2.StatusCode)
	}
	if got := s.Metrics().Snapshot().CaptureReplicasHeld; got != 0 {
		t.Fatalf("capture_replicas_held %d after drop, want 0", got)
	}
}
