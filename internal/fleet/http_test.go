package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"
)

func postMission(t *testing.T, ts *httptest.Server, body SubmitRequest) *http.Response {
	t.Helper()
	payload, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/missions", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func tagInputs(id uint16) []TagInput {
	return []TagInput{{ID: id, X: 29, Y: 1.5, Z: 1.0}}
}

// TestHTTPOverfill429 is the acceptance test for backpressure at the
// HTTP boundary: overfilling the bounded queue must yield 429 with a
// Retry-After header and a structured error body.
func TestHTTPOverfill429(t *testing.T) {
	cfg := fastConfig(1)
	cfg.QueueCap = 4
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Scheduler deliberately not started: nothing dequeues, so the
	// fifth submit must overflow.
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	for i := 0; i < 4; i++ {
		resp := postMission(t, ts, SubmitRequest{Region: "dock", Tags: tagInputs(uint16(i + 1))})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("fill submit %d: status %d", i, resp.StatusCode)
		}
		resp.Body.Close()
	}

	resp := postMission(t, ts, SubmitRequest{Region: "dock", Tags: tagInputs(9)})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overfill status %d, want 429", resp.StatusCode)
	}
	ra := resp.Header.Get("Retry-After")
	if ra == "" {
		t.Fatal("429 missing Retry-After header")
	}
	if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
		t.Fatalf("Retry-After %q, want integer >= 1", ra)
	}
	var eresp ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&eresp); err != nil {
		t.Fatal(err)
	}
	if eresp.Error == "" || eresp.RetryAfterS < 1 {
		t.Fatalf("error body %+v, want message and retry_after_s >= 1", eresp)
	}
}

func TestHTTPSubmitPollDone(t *testing.T) {
	s, err := New(fastConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Drain(context.Background())
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	resp := postMission(t, ts, SubmitRequest{
		Region:     "corridor-east",
		Tags:       tagInputs(7),
		DeadlineMs: 30_000,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	var sr SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if sr.ID == "" || sr.Status != StatusQueued {
		t.Fatalf("submit response %+v", sr)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := ts.Client().Get(ts.URL + "/v1/missions/" + sr.ID)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll status %d", resp.StatusCode)
		}
		var mr MissionResponse
		if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if mr.Status.Terminal() {
			if mr.Status != StatusDone {
				t.Fatalf("mission ended %s (%s)", mr.Status, mr.Error)
			}
			if mr.Outcome == nil || len(mr.Outcome.TagReads) != 1 {
				t.Fatalf("terminal response missing demuxed outcome: %+v", mr.Outcome)
			}
			if mr.Shard == nil {
				t.Fatal("terminal response missing shard assignment")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("mission did not finish")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestHTTPBadRequests(t *testing.T) {
	s, err := New(fastConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	cases := []struct {
		name string
		body string
	}{
		{"unknown region", `{"region":"atlantis","tags":[{"id":1,"x":1,"y":1,"z":1}]}`},
		{"no tags", `{"region":"dock"}`},
		{"unknown field", `{"region":"dock","tags":[{"id":1,"x":1,"y":1,"z":1}],"warp":9}`},
		{"negative deadline", `{"region":"dock","tags":[{"id":1,"x":1,"y":1,"z":1}],"deadline_ms":-5}`},
		{"malformed json", `{"region":`},
	}
	for _, tc := range cases {
		resp, err := ts.Client().Post(ts.URL+"/v1/missions", "application/json", bytes.NewReader([]byte(tc.body)))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
		resp.Body.Close()
	}

	resp, err := ts.Client().Get(ts.URL + "/v1/missions/m-999999")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown mission status %d, want 404", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestHTTPCancel(t *testing.T) {
	s, err := New(fastConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	// Not started: the mission stays queued so the cancel always lands.
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	resp := postMission(t, ts, SubmitRequest{Region: "dock", Tags: tagInputs(1)})
	var sr SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/missions/"+sr.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status %d", dresp.StatusCode)
	}
	var mr MissionResponse
	if err := json.NewDecoder(dresp.Body).Decode(&mr); err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if mr.Status != StatusCanceled {
		t.Fatalf("post-cancel status %s", mr.Status)
	}

	// Second cancel: mission already terminal — conflict.
	dresp2, err := ts.Client().Do(req.Clone(context.Background()))
	if err != nil {
		t.Fatal(err)
	}
	if dresp2.StatusCode != http.StatusConflict {
		t.Fatalf("re-cancel status %d, want 409", dresp2.StatusCode)
	}
	dresp2.Body.Close()
}

func TestHTTPHealthAndMetrics(t *testing.T) {
	s, err := New(fastConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	resp.Body.Close()

	mresp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.NewDecoder(mresp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	if snap.Shards != 2 {
		t.Fatalf("metrics shards %d, want 2", snap.Shards)
	}
	if len(snap.ShardBusyS) != 2 {
		t.Fatalf("shard_busy_s has %d entries, want 2", len(snap.ShardBusyS))
	}

	// Draining flips healthz to 503.
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	hresp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz status %d, want 503", hresp.StatusCode)
	}
	hresp.Body.Close()

	// Submissions during drain surface as 503 too.
	sresp := postMission(t, ts, SubmitRequest{Region: "dock", Tags: tagInputs(2)})
	if sresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining submit status %d, want 503", sresp.StatusCode)
	}
	sresp.Body.Close()
}
