package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"
)

func postMission(t *testing.T, ts *httptest.Server, body SubmitRequest) *http.Response {
	t.Helper()
	payload, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/missions", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func tagInputs(id uint16) []TagInput {
	return []TagInput{{ID: id, X: 29, Y: 1.5, Z: 1.0}}
}

// TestHTTPOverfill429 is the acceptance test for backpressure at the
// HTTP boundary: overfilling the bounded queue must yield 429 with a
// Retry-After header and a structured error body.
func TestHTTPOverfill429(t *testing.T) {
	cfg := fastConfig(1)
	cfg.QueueCap = 4
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Scheduler deliberately not started: nothing dequeues, so the
	// fifth submit must overflow.
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	for i := 0; i < 4; i++ {
		resp := postMission(t, ts, SubmitRequest{Region: "dock", Tags: tagInputs(uint16(i + 1))})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("fill submit %d: status %d", i, resp.StatusCode)
		}
		resp.Body.Close()
	}

	resp := postMission(t, ts, SubmitRequest{Region: "dock", Tags: tagInputs(9)})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overfill status %d, want 429", resp.StatusCode)
	}
	ra := resp.Header.Get("Retry-After")
	if ra == "" {
		t.Fatal("429 missing Retry-After header")
	}
	if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
		t.Fatalf("Retry-After %q, want integer >= 1", ra)
	}
	var eresp ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&eresp); err != nil {
		t.Fatal(err)
	}
	if eresp.Error == "" || eresp.RetryAfterS < 1 {
		t.Fatalf("error body %+v, want message and retry_after_s >= 1", eresp)
	}
}

func TestHTTPSubmitPollDone(t *testing.T) {
	s, err := New(fastConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Drain(context.Background())
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	resp := postMission(t, ts, SubmitRequest{
		Region:     "corridor-east",
		Tags:       tagInputs(7),
		DeadlineMs: 30_000,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	var sr SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if sr.ID == "" || sr.Status != StatusQueued {
		t.Fatalf("submit response %+v", sr)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := ts.Client().Get(ts.URL + "/v1/missions/" + sr.ID)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll status %d", resp.StatusCode)
		}
		var mr MissionResponse
		if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if mr.Status.Terminal() {
			if mr.Status != StatusDone {
				t.Fatalf("mission ended %s (%s)", mr.Status, mr.Error)
			}
			if mr.Outcome == nil || len(mr.Outcome.TagReads) != 1 {
				t.Fatalf("terminal response missing demuxed outcome: %+v", mr.Outcome)
			}
			if mr.Shard == nil {
				t.Fatal("terminal response missing shard assignment")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("mission did not finish")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestHTTPBadRequests(t *testing.T) {
	s, err := New(fastConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	cases := []struct {
		name string
		body string
	}{
		{"unknown region", `{"region":"atlantis","tags":[{"id":1,"x":1,"y":1,"z":1}]}`},
		{"no tags", `{"region":"dock"}`},
		{"unknown field", `{"region":"dock","tags":[{"id":1,"x":1,"y":1,"z":1}],"warp":9}`},
		{"negative deadline", `{"region":"dock","tags":[{"id":1,"x":1,"y":1,"z":1}],"deadline_ms":-5}`},
		{"malformed json", `{"region":`},
	}
	for _, tc := range cases {
		resp, err := ts.Client().Post(ts.URL+"/v1/missions", "application/json", bytes.NewReader([]byte(tc.body)))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
		resp.Body.Close()
	}

	resp, err := ts.Client().Get(ts.URL + "/v1/missions/m-999999")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown mission status %d, want 404", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestHTTPCancel(t *testing.T) {
	s, err := New(fastConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	// Not started: the mission stays queued so the cancel always lands.
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	resp := postMission(t, ts, SubmitRequest{Region: "dock", Tags: tagInputs(1)})
	var sr SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/missions/"+sr.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status %d", dresp.StatusCode)
	}
	var mr MissionResponse
	if err := json.NewDecoder(dresp.Body).Decode(&mr); err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if mr.Status != StatusCanceled {
		t.Fatalf("post-cancel status %s", mr.Status)
	}

	// Second cancel: mission already terminal — conflict.
	dresp2, err := ts.Client().Do(req.Clone(context.Background()))
	if err != nil {
		t.Fatal(err)
	}
	if dresp2.StatusCode != http.StatusConflict {
		t.Fatalf("re-cancel status %d, want 409", dresp2.StatusCode)
	}
	dresp2.Body.Close()
}

func TestHTTPHealthAndMetrics(t *testing.T) {
	s, err := New(fastConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	resp.Body.Close()

	mresp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.NewDecoder(mresp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	if snap.Shards != 2 {
		t.Fatalf("metrics shards %d, want 2", snap.Shards)
	}
	if len(snap.ShardBusyS) != 2 {
		t.Fatalf("shard_busy_s has %d entries, want 2", len(snap.ShardBusyS))
	}

	// Draining flips healthz to 503.
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	hresp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz status %d, want 503", hresp.StatusCode)
	}
	hresp.Body.Close()

	// Submissions during drain surface as 503 too.
	sresp := postMission(t, ts, SubmitRequest{Region: "dock", Tags: tagInputs(2)})
	if sresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining submit status %d, want 503", sresp.StatusCode)
	}
	sresp.Body.Close()
}

// TestHTTPCheckpointAndReplica drives the federation-facing endpoints
// end to end over real HTTP: submit exclusive, read the published
// checkpoint, hold it as a replica (as a successor node would), fetch
// it back, resubmit it as a resume mission, and drop it.
func TestHTTPCheckpointAndReplica(t *testing.T) {
	cfg := fastConfig(1)
	cfg.Sorties = 2
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Stop(context.Background())
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	resp := postMission(t, ts, SubmitRequest{
		Region: "dock", Tags: tagInputs(4), Seed: 77, Exclusive: true,
	})
	var sub SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if id := sub.ID; id == "" {
		t.Fatal("submit returned no mission id")
	}
	// Wait for completion, then the checkpoint is final.
	<-s.Done(sub.ID)

	cresp, err := ts.Client().Get(ts.URL + "/v1/missions/" + sub.ID + "/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	var ckpt CheckpointResponse
	if err := json.NewDecoder(cresp.Body).Decode(&ckpt); err != nil {
		t.Fatal(err)
	}
	cresp.Body.Close()
	if cresp.StatusCode != http.StatusOK || ckpt.Sortie != 2 || ckpt.CheckpointB64 == "" {
		t.Fatalf("checkpoint fetch: status %d, sortie %d", cresp.StatusCode, ckpt.Sortie)
	}

	// Hold it as a replica under the coordinator's mission id.
	body, _ := json.Marshal(ReplicaPut{Sortie: ckpt.Sortie, CheckpointB64: ckpt.CheckpointB64})
	preq, _ := http.NewRequest(http.MethodPut, ts.URL+"/v1/replicas/fed-001", bytes.NewReader(body))
	presp, err := ts.Client().Do(preq)
	if err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if presp.StatusCode != http.StatusOK {
		t.Fatalf("replica put status %d", presp.StatusCode)
	}

	rresp, err := ts.Client().Get(ts.URL + "/v1/replicas/fed-001")
	if err != nil {
		t.Fatal(err)
	}
	var rep CheckpointResponse
	if err := json.NewDecoder(rresp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	rresp.Body.Close()
	if rep.CheckpointB64 != ckpt.CheckpointB64 {
		t.Fatal("replica bytes differ from the published checkpoint")
	}

	// The replica resumes as a mission (trivially: all sorties done, the
	// engine just reports its final state).
	resp = postMission(t, ts, SubmitRequest{
		Region: "dock", Tags: tagInputs(4), Seed: 77, ResumeB64: rep.CheckpointB64,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("resume submit status %d", resp.StatusCode)
	}
	var rsub SubmitResponse
	json.NewDecoder(resp.Body).Decode(&rsub)
	resp.Body.Close()
	<-s.Done(rsub.ID)
	if v, _ := s.Get(rsub.ID); v.Status != StatusDone {
		t.Fatalf("resumed mission finished %s: %s", v.Status, v.Err)
	}

	dreq, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/replicas/fed-001", nil)
	dresp, err := ts.Client().Do(dreq)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("replica delete status %d", dresp.StatusCode)
	}
	dresp2, err := ts.Client().Do(dreq)
	if err == nil {
		if dresp2.StatusCode != http.StatusNotFound {
			t.Fatalf("second delete status %d, want 404", dresp2.StatusCode)
		}
		dresp2.Body.Close()
	}
}

// TestWithRequestTimeout: a handler that outlives the per-request
// budget sees its context canceled.
func TestWithRequestTimeout(t *testing.T) {
	var sawDeadline bool
	h := WithRequestTimeout(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
			sawDeadline = true
		case <-time.After(5 * time.Second):
		}
	}), 20*time.Millisecond)
	ts := httptest.NewServer(h)
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !sawDeadline {
		t.Fatal("request context never hit the per-request timeout")
	}
}

// TestHTTPLiveEstimate: a SAR mission's record grows an "estimate" block
// once enough aperture commits, and the terminal record's estimate
// agrees exactly with the outcome's final solve — same accumulator, same
// bits, one read through JSON.
func TestHTTPLiveEstimate(t *testing.T) {
	cfg := fastConfig(1)
	cfg.Sorties = 3
	cfg.TicksPerSortie = 8
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Drain(context.Background())
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	resp := postMission(t, ts, SubmitRequest{
		Region:    "corridor-east",
		Tags:      tagInputs(7),
		Seed:      11,
		SARPoints: 16,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	var sr SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	deadline := time.Now().Add(30 * time.Second)
	var mr MissionResponse
	for {
		resp, err := ts.Client().Get(ts.URL + "/v1/missions/" + sr.ID)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll status %d", resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if mr.Status.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("mission did not finish")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if mr.Status != StatusDone {
		t.Fatalf("mission ended %s (%s)", mr.Status, mr.Error)
	}
	if mr.Estimate == nil {
		t.Fatal("terminal SAR mission record has no estimate block")
	}
	est := mr.Estimate
	if est.Sorties != cfg.Sorties {
		t.Fatalf("estimate covers %d sorties, mission flew %d", est.Sorties, cfg.Sorties)
	}
	if est.SigmaX <= 0 || est.SigmaY <= 0 {
		t.Fatalf("estimate σ (%v, %v), want positive", est.SigmaX, est.SigmaY)
	}
	if est.Kept <= 0 || est.Kept > est.Total {
		t.Fatalf("estimate accounting kept=%d total=%d", est.Kept, est.Total)
	}
	if mr.Outcome == nil || !mr.Outcome.LocOK {
		t.Fatalf("outcome missing localization: %+v", mr.Outcome)
	}
	if est.X != mr.Outcome.LocX || est.Y != mr.Outcome.LocY {
		t.Fatalf("final estimate (%.17g, %.17g) != outcome solve (%.17g, %.17g)",
			est.X, est.Y, mr.Outcome.LocX, mr.Outcome.LocY)
	}
}

// TestHTTPNoEstimateWithoutSAR: an inventory-only mission never grows an
// estimate block.
func TestHTTPNoEstimateWithoutSAR(t *testing.T) {
	s, err := New(fastConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Drain(context.Background())
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	resp := postMission(t, ts, SubmitRequest{Region: "dock", Tags: tagInputs(3)})
	var sr SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := ts.Client().Get(ts.URL + "/v1/missions/" + sr.ID)
		if err != nil {
			t.Fatal(err)
		}
		var mr MissionResponse
		if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if mr.Status.Terminal() {
			if mr.Estimate != nil {
				t.Fatalf("inventory-only mission grew an estimate block: %+v", mr.Estimate)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("mission did not finish")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
