package fleet

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"rfly/internal/capture"
	"rfly/internal/obs"
	"rfly/internal/runtime"
)

// HTTP/JSON front end. cmd/rfly-serve mounts this handler; it lives in
// the package so the API tests (and rfly-load's in-process spawn mode)
// exercise exactly the bytes the daemon serves.
//
//	POST   /v1/missions                 submit (202, or 429 + Retry-After, or 503 draining)
//	GET    /v1/missions/{id}            poll a mission record (includes a live
//	                                    "estimate" block while a SAR mission flies)
//	GET    /v1/missions/{id}/trace      flight-recorder span dump for the batch
//	                                    sortie that served the mission
//	GET    /v1/missions/{id}/checkpoint latest committed sortie-boundary
//	                                    checkpoint (the replication source)
//	GET    /v1/missions/{id}/capture    latest committed capture log
//	                                    (?after=N returns only the segment
//	                                    tail past sortie N — the federation
//	                                    tier's incremental replication feed)
//	POST   /v1/missions/{id}/replay     re-solve the mission from its capture
//	                                    log under caller-chosen grid /
//	                                    robustness settings (milliseconds; no
//	                                    engine, no sim)
//	DELETE /v1/missions/{id}            cancel
//	PUT    /v1/replicas/{id}            hold a peer mission's checkpoint
//	GET    /v1/replicas/{id}            fetch a held replica
//	DELETE /v1/replicas/{id}            discard a held replica
//	PUT    /v1/capture-replicas/{id}    hold (or extend, segment-append) a
//	                                    peer mission's capture log
//	GET    /v1/capture-replicas/{id}    fetch a held capture replica
//	DELETE /v1/capture-replicas/{id}    discard a held capture replica
//	GET    /healthz                     liveness + drain state
//	GET    /metrics                     counter snapshot (queue depth, shard
//	                                    utilization, batch + latency histograms,
//	                                    plus the process-wide obs registry)

// SubmitRequest is the POST /v1/missions body.
type SubmitRequest struct {
	Region    string     `json:"region"`
	ChannelHz float64    `json:"channel_hz,omitempty"`
	Tags      []TagInput `json:"tags"`
	Priority  int        `json:"priority,omitempty"`
	Seed      uint64     `json:"seed,omitempty"`
	// DeadlineMs is a relative deadline for the whole request; it maps
	// onto the mission context's deadline.
	DeadlineMs int64 `json:"deadline_ms,omitempty"`
	SARPoints  int   `json:"sar_points,omitempty"`
	// Exclusive keeps the mission out of batch coalescing — the
	// federation tier sets it so per-mission checkpoints stay
	// relocatable (see Request.Exclusive).
	Exclusive bool `json:"exclusive,omitempty"`
	// ResumeB64 is a base64 sortie-boundary checkpoint to restore from
	// (the failover path); it requires an explicit seed and implies
	// exclusive.
	ResumeB64 string `json:"resume_b64,omitempty"`
}

// TagInput places one inventory target in region coordinates.
type TagInput struct {
	ID uint16  `json:"id"`
	X  float64 `json:"x"`
	Y  float64 `json:"y"`
	Z  float64 `json:"z"`
}

// SubmitResponse is the 202 body.
type SubmitResponse struct {
	ID     string `json:"id"`
	Status Status `json:"status"`
}

// ErrorResponse is every non-2xx JSON body.
type ErrorResponse struct {
	Error string `json:"error"`
	// RetryAfterS accompanies 429s (the Retry-After header carries the
	// same value).
	RetryAfterS int64 `json:"retry_after_s,omitempty"`
}

// MissionResponse is the GET body.
type MissionResponse struct {
	ID        string   `json:"id"`
	Region    string   `json:"region"`
	Status    Status   `json:"status"`
	Error     string   `json:"error,omitempty"`
	BatchSize int      `json:"batch_size,omitempty"`
	Shard     *int     `json:"shard,omitempty"`
	WaitMs    float64  `json:"wait_ms,omitempty"`
	RunMs     float64  `json:"run_ms,omitempty"`
	Outcome   *Outcome `json:"outcome,omitempty"`
	// Estimate is the streaming accumulator's latest mid-flight
	// localization of the batch's lead tag, refreshed at every committed
	// sortie boundary. Present once enough aperture has accumulated;
	// after completion it matches the outcome's final solve.
	Estimate *EstimateBlock `json:"estimate,omitempty"`
}

// EstimateBlock is the live-estimate section of a mission record.
type EstimateBlock struct {
	Sorties int     `json:"sorties"`
	X       float64 `json:"x"`
	Y       float64 `json:"y"`
	SigmaX  float64 `json:"sigma_x"`
	SigmaY  float64 `json:"sigma_y"`
	// Total/Kept account the aperture: captures integrated vs captures
	// surviving robust lock rejection.
	Total int `json:"total"`
	Kept  int `json:"kept"`
}

// TraceResponse is the GET /v1/missions/{id}/trace body.
type TraceResponse struct {
	ID     string           `json:"id"`
	Status Status           `json:"status"`
	Spans  []obs.SpanRecord `json:"spans"`
}

// MetricsResponse is the GET /metrics body: the scheduler snapshot plus
// the process-wide obs registry (relay/reader counters bumped by the
// instrumented hot paths).
type MetricsResponse struct {
	Snapshot
	Obs obs.RegistrySnapshot `json:"obs"`
}

// NewHandler wraps the scheduler in the service's HTTP API.
func NewHandler(s *Scheduler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/missions", func(w http.ResponseWriter, r *http.Request) {
		handleSubmit(s, w, r)
	})
	mux.HandleFunc("GET /v1/missions/{id}", func(w http.ResponseWriter, r *http.Request) {
		handleGet(s, w, r)
	})
	mux.HandleFunc("GET /v1/missions/{id}/trace", func(w http.ResponseWriter, r *http.Request) {
		handleTrace(s, w, r)
	})
	mux.HandleFunc("GET /v1/missions/{id}/checkpoint", func(w http.ResponseWriter, r *http.Request) {
		handleCheckpoint(s, w, r)
	})
	mux.HandleFunc("GET /v1/missions/{id}/capture", func(w http.ResponseWriter, r *http.Request) {
		handleCapture(s, w, r)
	})
	mux.HandleFunc("POST /v1/missions/{id}/replay", func(w http.ResponseWriter, r *http.Request) {
		handleReplay(s, w, r)
	})
	mux.HandleFunc("DELETE /v1/missions/{id}", func(w http.ResponseWriter, r *http.Request) {
		handleCancel(s, w, r)
	})
	mux.HandleFunc("PUT /v1/capture-replicas/{id}", func(w http.ResponseWriter, r *http.Request) {
		handleCaptureReplicaPut(s, w, r)
	})
	mux.HandleFunc("GET /v1/capture-replicas/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		sortie, data, ok := s.GetCaptureReplica(id)
		if !ok {
			writeJSON(w, http.StatusNotFound, ErrorResponse{Error: "no capture replica held for that id"})
			return
		}
		writeJSON(w, http.StatusOK, CaptureResponse{
			ID: id, Sortie: sortie, CaptureB64: base64.StdEncoding.EncodeToString(data),
		})
	})
	mux.HandleFunc("DELETE /v1/capture-replicas/{id}", func(w http.ResponseWriter, r *http.Request) {
		if !s.DropCaptureReplica(r.PathValue("id")) {
			writeJSON(w, http.StatusNotFound, ErrorResponse{Error: "no capture replica held for that id"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"dropped": true})
	})
	mux.HandleFunc("PUT /v1/replicas/{id}", func(w http.ResponseWriter, r *http.Request) {
		handleReplicaPut(s, w, r)
	})
	mux.HandleFunc("GET /v1/replicas/{id}", func(w http.ResponseWriter, r *http.Request) {
		handleReplicaGet(s, w, r)
	})
	mux.HandleFunc("DELETE /v1/replicas/{id}", func(w http.ResponseWriter, r *http.Request) {
		if !s.DropReplica(r.PathValue("id")) {
			writeJSON(w, http.StatusNotFound, ErrorResponse{Error: "no replica held for that id"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"dropped": true})
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if s.Draining() {
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "shards": s.Config().Shards})
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, MetricsResponse{
			Snapshot: s.Metrics().Snapshot(),
			Obs:      obs.Default().Snapshot(),
		})
	})
	return mux
}

func handleSubmit(s *Scheduler, w http.ResponseWriter, r *http.Request) {
	var in SubmitRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&in); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	req := Request{
		Region:    in.Region,
		ChannelHz: in.ChannelHz,
		Priority:  in.Priority,
		Seed:      in.Seed,
		SARPoints: in.SARPoints,
		Exclusive: in.Exclusive,
	}
	if in.ResumeB64 != "" {
		blob, err := base64.StdEncoding.DecodeString(in.ResumeB64)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "bad resume_b64: " + err.Error()})
			return
		}
		req.Resume = blob
	}
	for _, t := range in.Tags {
		req.Tags = append(req.Tags, runtime.TagSpec{ID: t.ID, X: t.X, Y: t.Y, Z: t.Z})
	}
	if in.DeadlineMs < 0 {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "deadline_ms must be non-negative"})
		return
	}
	if in.DeadlineMs > 0 {
		req.Deadline = time.Now().Add(time.Duration(in.DeadlineMs) * time.Millisecond)
	}

	id, err := s.Submit(req)
	var backlog ErrBacklog
	switch {
	case err == nil:
		writeJSON(w, http.StatusAccepted, SubmitResponse{ID: id, Status: StatusQueued})
	case errors.As(err, &backlog):
		secs := int64(backlog.RetryAfter / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
		writeJSON(w, http.StatusTooManyRequests, ErrorResponse{Error: err.Error(), RetryAfterS: secs})
	case errors.As(err, &ErrDraining{}):
		writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{Error: err.Error()})
	default:
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
	}
}

func handleGet(s *Scheduler, w http.ResponseWriter, r *http.Request) {
	v, ok := s.Get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, ErrorResponse{Error: "unknown mission id"})
		return
	}
	writeJSON(w, http.StatusOK, viewResponse(v))
}

func handleTrace(s *Scheduler, w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	v, ok := s.Get(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, ErrorResponse{Error: "unknown mission id"})
		return
	}
	spans, ok := s.Trace(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, ErrorResponse{Error: "mission has no trace yet (not flown)"})
		return
	}
	writeJSON(w, http.StatusOK, TraceResponse{ID: id, Status: v.Status, Spans: spans})
}

// CheckpointResponse is the GET /v1/missions/{id}/checkpoint body.
type CheckpointResponse struct {
	ID string `json:"id"`
	// Sortie is how many sorties the checkpoint covers.
	Sortie        int    `json:"sortie"`
	CheckpointB64 string `json:"checkpoint_b64"`
}

// ReplicaPut is the PUT /v1/replicas/{id} body.
type ReplicaPut struct {
	Sortie        int    `json:"sortie"`
	CheckpointB64 string `json:"checkpoint_b64"`
}

func handleCheckpoint(s *Scheduler, w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.Get(id); !ok {
		writeJSON(w, http.StatusNotFound, ErrorResponse{Error: "unknown mission id"})
		return
	}
	data, sortie, ok := s.Checkpoint(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, ErrorResponse{Error: "mission has no committed checkpoint yet"})
		return
	}
	writeJSON(w, http.StatusOK, CheckpointResponse{
		ID: id, Sortie: sortie, CheckpointB64: base64.StdEncoding.EncodeToString(data),
	})
}

func handleReplicaPut(s *Scheduler, w http.ResponseWriter, r *http.Request) {
	var in ReplicaPut
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&in); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	blob, err := base64.StdEncoding.DecodeString(in.CheckpointB64)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "bad checkpoint_b64: " + err.Error()})
		return
	}
	if err := s.PutReplica(r.PathValue("id"), in.Sortie, blob); err != nil {
		writeJSON(w, http.StatusConflict, ErrorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"held": true, "sortie": in.Sortie})
}

// CaptureResponse is the GET /v1/missions/{id}/capture body (and the
// capture-replica GET body). A tail request (?after=N) that finds the
// peer already current returns sortie == N and an empty capture_b64.
type CaptureResponse struct {
	ID string `json:"id"`
	// Sortie is how many sorties the capture log covers.
	Sortie     int    `json:"sortie"`
	CaptureB64 string `json:"capture_b64"`
	// Tail marks a ?after=N response: capture_b64 holds only the
	// header-less segment bytes past sortie N, not a standalone log.
	Tail bool `json:"tail,omitempty"`
}

// ReplayRequest is the POST /v1/missions/{id}/replay body. Zero-valued
// fields keep the live solve's settings; robust defaults to true (the
// live solver) and must be set to false explicitly to integrate
// unlocked captures.
type ReplayRequest struct {
	Grid    float64 `json:"grid,omitempty"`
	Fine    float64 `json:"fine,omitempty"`
	Workers int     `json:"workers,omitempty"`
	Robust  *bool   `json:"robust,omitempty"`
}

// ReplayResponse is the replay solve's result.
type ReplayResponse struct {
	ID       string  `json:"id"`
	Sortie   int     `json:"sortie"`
	X        float64 `json:"x"`
	Y        float64 `json:"y"`
	Peak     float64 `json:"peak"`
	SigmaX   float64 `json:"sigma_x"`
	SigmaY   float64 `json:"sigma_y"`
	Total    int     `json:"total"`
	Kept     int     `json:"kept"`
	Segments int     `json:"segments"`
	Records  uint64  `json:"records"`
}

// CaptureReplicaPut is the PUT /v1/capture-replicas/{id} body. After is
// the sortie the receiver is expected to hold already: zero installs
// capture_b64 as a complete log; non-zero appends it (raw segment tail
// bytes) to a replica at exactly that sortie, and mismatch is a 409 —
// the sender's cue to fall back to a full sync.
type CaptureReplicaPut struct {
	After      int    `json:"after,omitempty"`
	Sortie     int    `json:"sortie"`
	CaptureB64 string `json:"capture_b64"`
}

func handleCapture(s *Scheduler, w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.Get(id); !ok {
		writeJSON(w, http.StatusNotFound, ErrorResponse{Error: "unknown mission id"})
		return
	}
	if q := r.URL.Query().Get("after"); q != "" {
		after, err := strconv.Atoi(q)
		if err != nil || after < 0 {
			writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "after must be a non-negative integer"})
			return
		}
		tail, sortie, ok := s.CaptureTail(id, after)
		if !ok {
			writeJSON(w, http.StatusNotFound, ErrorResponse{Error: "mission has no committed capture log yet"})
			return
		}
		writeJSON(w, http.StatusOK, CaptureResponse{
			ID: id, Sortie: sortie, CaptureB64: base64.StdEncoding.EncodeToString(tail), Tail: true,
		})
		return
	}
	data, sortie, ok := s.Capture(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, ErrorResponse{Error: "mission has no committed capture log yet"})
		return
	}
	writeJSON(w, http.StatusOK, CaptureResponse{
		ID: id, Sortie: sortie, CaptureB64: base64.StdEncoding.EncodeToString(data),
	})
}

func handleReplay(s *Scheduler, w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.Get(id); !ok {
		writeJSON(w, http.StatusNotFound, ErrorResponse{Error: "unknown mission id"})
		return
	}
	var in ReplayRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&in); err != nil && !errors.Is(err, io.EOF) {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	data, sortie, ok := s.Capture(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, ErrorResponse{Error: "mission has no committed capture log yet"})
		return
	}
	opts := capture.LiveOptions()
	opts.CoarseRes = in.Grid
	opts.FineRes = in.Fine
	opts.Workers = in.Workers
	if in.Robust != nil {
		opts.Robust = *in.Robust
	}
	res, err := capture.Replay(r.Context(), data, opts)
	if err != nil {
		writeJSON(w, http.StatusUnprocessableEntity, ErrorResponse{Error: err.Error()})
		return
	}
	s.m.replays.Add(1)
	writeJSON(w, http.StatusOK, ReplayResponse{
		ID:       id,
		Sortie:   sortie,
		X:        res.Location.X,
		Y:        res.Location.Y,
		Peak:     res.Peak,
		SigmaX:   res.SigmaX,
		SigmaY:   res.SigmaY,
		Total:    res.Total,
		Kept:     res.Kept,
		Segments: res.Segments,
		Records:  res.Records,
	})
}

func handleCaptureReplicaPut(s *Scheduler, w http.ResponseWriter, r *http.Request) {
	var in CaptureReplicaPut
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&in); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	blob, err := base64.StdEncoding.DecodeString(in.CaptureB64)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "bad capture_b64: " + err.Error()})
		return
	}
	if err := s.PutCaptureReplica(r.PathValue("id"), in.After, in.Sortie, blob); err != nil {
		writeJSON(w, http.StatusConflict, ErrorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"held": true, "sortie": in.Sortie})
}

func handleReplicaGet(s *Scheduler, w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sortie, data, ok := s.GetReplica(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, ErrorResponse{Error: "no replica held for that id"})
		return
	}
	writeJSON(w, http.StatusOK, CheckpointResponse{
		ID: id, Sortie: sortie, CheckpointB64: base64.StdEncoding.EncodeToString(data),
	})
}

func handleCancel(s *Scheduler, w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.Get(id); !ok {
		writeJSON(w, http.StatusNotFound, ErrorResponse{Error: "unknown mission id"})
		return
	}
	if !s.Cancel(id) {
		v, _ := s.Get(id)
		writeJSON(w, http.StatusConflict, viewResponse(v))
		return
	}
	v, _ := s.Get(id)
	writeJSON(w, http.StatusOK, viewResponse(v))
}

func viewResponse(v View) MissionResponse {
	out := MissionResponse{
		ID:        v.ID,
		Region:    v.Region,
		Status:    v.Status,
		Error:     v.Err,
		BatchSize: v.BatchSize,
		Outcome:   v.Outcome,
	}
	if v.Shard >= 0 {
		sh := v.Shard
		out.Shard = &sh
	}
	if v.Estimate != nil {
		out.Estimate = &EstimateBlock{
			Sorties: v.Estimate.SortiesDone,
			X:       v.Estimate.X,
			Y:       v.Estimate.Y,
			SigmaX:  v.Estimate.SigmaX,
			SigmaY:  v.Estimate.SigmaY,
			Total:   v.Estimate.Total,
			Kept:    v.Estimate.Kept,
		}
	}
	if !v.Started.IsZero() {
		out.WaitMs = float64(v.Started.Sub(v.Submitted)) / float64(time.Millisecond)
		end := v.Finished
		if end.IsZero() {
			end = time.Now()
		}
		out.RunMs = float64(end.Sub(v.Started)) / float64(time.Millisecond)
	}
	return out
}

// WithRequestTimeout bounds every request's context: a handler stuck
// behind a slow scheduler (or a client that stops reading) is cut off
// after d instead of pinning its goroutine. Mission deadlines are
// separate — this is the HTTP tier's own guard, so d should comfortably
// exceed the poll/submit path's worst case (those handlers only touch
// in-memory state; the missions themselves fly asynchronously).
func WithRequestTimeout(h http.Handler, d time.Duration) http.Handler {
	if d <= 0 {
		return h
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		h.ServeHTTP(w, r.WithContext(ctx))
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// Headers are gone; nothing useful left to do but note it.
		fmt.Fprintf(w, `{"error":%q}`, err.Error())
	}
}
