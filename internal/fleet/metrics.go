package fleet

import (
	"sync/atomic"
	"time"

	"rfly/internal/obs"
)

// Metrics are the service's expvar-style counters: monotonic atomics
// plus fixed-bucket histograms, cheap enough to bump on every request
// and rendered as one JSON document at GET /metrics. Everything here is
// cumulative since process start; rates are the scraper's job. The
// histograms are obs.Histogram instances (the generalized form of the
// fixed-bucket histogram that used to live here); HistSnapshot keeps
// the original ms-suffixed JSON shape so /metrics consumers see no
// change.

// histBoundsMs are the latency histogram bucket upper bounds, in
// milliseconds; the last bucket is unbounded.
var histBoundsMs = []float64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000, 30000}

// histSnap renders an obs latency histogram in the fleet's JSON shape.
func histSnap(h *obs.Histogram) HistSnapshot {
	s := h.Snapshot()
	return HistSnapshot{
		Count:    s.Count,
		MeanMs:   s.Mean,
		P50Ms:    s.P50,
		P95Ms:    s.P95,
		P99Ms:    s.P99,
		BoundsMs: s.Bounds,
		Buckets:  s.Buckets,
	}
}

// HistSnapshot is a histogram's JSON rendering. Quantiles are bucket
// upper bounds (conservative estimates).
type HistSnapshot struct {
	Count    int64     `json:"count"`
	MeanMs   float64   `json:"mean_ms"`
	P50Ms    float64   `json:"p50_ms"`
	P95Ms    float64   `json:"p95_ms"`
	P99Ms    float64   `json:"p99_ms"`
	BoundsMs []float64 `json:"bounds_ms"`
	Buckets  []int64   `json:"buckets"`
}

// Metrics is the scheduler's counter set.
type Metrics struct {
	start time.Time

	submitted atomic.Int64
	accepted  atomic.Int64
	rejected  atomic.Int64 // backpressure rejections (429s)
	draining  atomic.Int64 // submissions refused because draining
	completed atomic.Int64
	failed    atomic.Int64
	canceled  atomic.Int64
	expired   atomic.Int64

	queueDepth atomic.Int64

	batches atomic.Int64
	// batchedRequests counts requests that shared a sortie with at
	// least one other request — the coalescing win.
	batchedRequests atomic.Int64
	batchSizeSum    atomic.Int64

	// checkpoints counts sortie-boundary checkpoints published for
	// replication; resumed counts missions restored from a peer's
	// checkpoint (the failover landings).
	checkpoints atomic.Int64
	resumed     atomic.Int64

	// replicaPuts counts accepted replica writes; replicasHeld and
	// replicaBytes gauge the store.
	replicaPuts  atomic.Int64
	replicasHeld atomic.Int64
	replicaBytes atomic.Int64

	// capturePubs counts capture-log publications at sortie commits;
	// replays counts replay solves served from held logs; the
	// capReplica* trio mirrors the checkpoint replica gauges for the
	// capture-segment replica store.
	capturePubs     atomic.Int64
	replays         atomic.Int64
	capReplicaPuts  atomic.Int64
	capReplicasHeld atomic.Int64
	capReplicaBytes atomic.Int64

	shardBusyNs []atomic.Int64

	wait *obs.Histogram // admission → sortie start
	run  *obs.Histogram // sortie start → finish
	e2e  *obs.Histogram // admission → terminal
}

func newMetrics(shards int) *Metrics {
	return &Metrics{
		start:       time.Now(),
		shardBusyNs: make([]atomic.Int64, shards),
		wait:        obs.NewHistogram(histBoundsMs),
		run:         obs.NewHistogram(histBoundsMs),
		e2e:         obs.NewHistogram(histBoundsMs),
	}
}

// Snapshot is the /metrics JSON document.
type Snapshot struct {
	UptimeS    float64 `json:"uptime_s"`
	Shards     int     `json:"shards"`
	QueueDepth int64   `json:"queue_depth"`

	Submitted        int64 `json:"submitted"`
	Accepted         int64 `json:"accepted"`
	Rejected         int64 `json:"rejected"`
	RejectedDraining int64 `json:"rejected_draining"`
	Completed        int64 `json:"completed"`
	Failed           int64 `json:"failed"`
	Canceled         int64 `json:"canceled"`
	Expired          int64 `json:"expired"`

	Batches         int64   `json:"batches"`
	BatchedRequests int64   `json:"batched_requests"`
	MeanBatchSize   float64 `json:"mean_batch_size"`

	Checkpoints  int64 `json:"checkpoints"`
	Resumed      int64 `json:"resumed"`
	ReplicaPuts  int64 `json:"replica_puts"`
	ReplicasHeld int64 `json:"replicas_held"`
	ReplicaBytes int64 `json:"replica_bytes"`

	CapturePublications int64 `json:"capture_publications"`
	Replays             int64 `json:"replays"`
	CaptureReplicaPuts  int64 `json:"capture_replica_puts"`
	CaptureReplicasHeld int64 `json:"capture_replicas_held"`
	CaptureReplicaBytes int64 `json:"capture_replica_bytes"`

	// ShardBusyPct is the fraction of the fleet's shard-seconds spent
	// flying sorties since start.
	ShardBusyPct float64   `json:"shard_busy_pct"`
	ShardBusyS   []float64 `json:"shard_busy_s"`

	WaitLatency HistSnapshot `json:"wait_latency"`
	RunLatency  HistSnapshot `json:"run_latency"`
	E2ELatency  HistSnapshot `json:"e2e_latency"`
}

// Snapshot renders the counters.
func (m *Metrics) Snapshot() Snapshot {
	up := time.Since(m.start).Seconds()
	s := Snapshot{
		UptimeS:          up,
		Shards:           len(m.shardBusyNs),
		QueueDepth:       m.queueDepth.Load(),
		Submitted:        m.submitted.Load(),
		Accepted:         m.accepted.Load(),
		Rejected:         m.rejected.Load(),
		RejectedDraining: m.draining.Load(),
		Completed:        m.completed.Load(),
		Failed:           m.failed.Load(),
		Canceled:         m.canceled.Load(),
		Expired:          m.expired.Load(),
		Batches:          m.batches.Load(),
		BatchedRequests:  m.batchedRequests.Load(),
		Checkpoints:      m.checkpoints.Load(),
		Resumed:          m.resumed.Load(),
		ReplicaPuts:      m.replicaPuts.Load(),
		ReplicasHeld:     m.replicasHeld.Load(),
		ReplicaBytes:     m.replicaBytes.Load(),

		CapturePublications: m.capturePubs.Load(),
		Replays:             m.replays.Load(),
		CaptureReplicaPuts:  m.capReplicaPuts.Load(),
		CaptureReplicasHeld: m.capReplicasHeld.Load(),
		CaptureReplicaBytes: m.capReplicaBytes.Load(),
		WaitLatency:         histSnap(m.wait),
		RunLatency:          histSnap(m.run),
		E2ELatency:          histSnap(m.e2e),
	}
	if s.Batches > 0 {
		s.MeanBatchSize = float64(m.batchSizeSum.Load()) / float64(s.Batches)
	}
	var busy float64
	s.ShardBusyS = make([]float64, len(m.shardBusyNs))
	for i := range m.shardBusyNs {
		sec := float64(m.shardBusyNs[i].Load()) / 1e9
		s.ShardBusyS[i] = sec
		busy += sec
	}
	if up > 0 && len(m.shardBusyNs) > 0 {
		s.ShardBusyPct = 100 * busy / (up * float64(len(m.shardBusyNs)))
	}
	return s
}
