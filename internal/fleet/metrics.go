package fleet

import (
	"sync/atomic"
	"time"
)

// Metrics are the service's expvar-style counters: monotonic atomics
// plus fixed-bucket histograms, cheap enough to bump on every request
// and rendered as one JSON document at GET /metrics. Everything here is
// cumulative since process start; rates are the scraper's job.

// histBoundsMs are the latency histogram bucket upper bounds, in
// milliseconds; the last bucket is unbounded.
var histBoundsMs = []float64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000, 30000}

// hist is a fixed-bucket histogram safe for concurrent observation.
type hist struct {
	buckets []atomic.Int64 // len(histBoundsMs)+1, last is overflow
	count   atomic.Int64
	sumMs   atomic.Int64 // microsecond-scaled to keep an integer sum
}

func (h *hist) observe(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	i := 0
	for i < len(histBoundsMs) && ms > histBoundsMs[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumMs.Add(d.Microseconds())
}

// quantile returns an upper-bound estimate of the q-quantile in ms
// (the bucket boundary at or above the rank; the overflow bucket
// reports the largest boundary).
func (h *hist) quantile(q float64) float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	rank := int64(q*float64(n-1)) + 1
	var seen int64
	for i := range h.buckets {
		seen += h.buckets[i].Load()
		if seen >= rank {
			if i < len(histBoundsMs) {
				return histBoundsMs[i]
			}
			return histBoundsMs[len(histBoundsMs)-1]
		}
	}
	return histBoundsMs[len(histBoundsMs)-1]
}

func (h *hist) snapshot() HistSnapshot {
	n := h.count.Load()
	s := HistSnapshot{
		Count:    n,
		BoundsMs: histBoundsMs,
		Buckets:  make([]int64, len(h.buckets)),
		P50Ms:    h.quantile(0.50),
		P95Ms:    h.quantile(0.95),
		P99Ms:    h.quantile(0.99),
	}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	if n > 0 {
		s.MeanMs = float64(h.sumMs.Load()) / 1000 / float64(n)
	}
	return s
}

// HistSnapshot is a histogram's JSON rendering. Quantiles are bucket
// upper bounds (conservative estimates).
type HistSnapshot struct {
	Count    int64     `json:"count"`
	MeanMs   float64   `json:"mean_ms"`
	P50Ms    float64   `json:"p50_ms"`
	P95Ms    float64   `json:"p95_ms"`
	P99Ms    float64   `json:"p99_ms"`
	BoundsMs []float64 `json:"bounds_ms"`
	Buckets  []int64   `json:"buckets"`
}

// Metrics is the scheduler's counter set.
type Metrics struct {
	start time.Time

	submitted atomic.Int64
	accepted  atomic.Int64
	rejected  atomic.Int64 // backpressure rejections (429s)
	draining  atomic.Int64 // submissions refused because draining
	completed atomic.Int64
	failed    atomic.Int64
	canceled  atomic.Int64
	expired   atomic.Int64

	queueDepth atomic.Int64

	batches atomic.Int64
	// batchedRequests counts requests that shared a sortie with at
	// least one other request — the coalescing win.
	batchedRequests atomic.Int64
	batchSizeSum    atomic.Int64

	shardBusyNs []atomic.Int64

	wait hist // admission → sortie start
	run  hist // sortie start → finish
	e2e  hist // admission → terminal
}

func newMetrics(shards int) *Metrics {
	m := &Metrics{start: time.Now(), shardBusyNs: make([]atomic.Int64, shards)}
	m.wait.buckets = make([]atomic.Int64, len(histBoundsMs)+1)
	m.run.buckets = make([]atomic.Int64, len(histBoundsMs)+1)
	m.e2e.buckets = make([]atomic.Int64, len(histBoundsMs)+1)
	return m
}

// Snapshot is the /metrics JSON document.
type Snapshot struct {
	UptimeS    float64 `json:"uptime_s"`
	Shards     int     `json:"shards"`
	QueueDepth int64   `json:"queue_depth"`

	Submitted        int64 `json:"submitted"`
	Accepted         int64 `json:"accepted"`
	Rejected         int64 `json:"rejected"`
	RejectedDraining int64 `json:"rejected_draining"`
	Completed        int64 `json:"completed"`
	Failed           int64 `json:"failed"`
	Canceled         int64 `json:"canceled"`
	Expired          int64 `json:"expired"`

	Batches         int64   `json:"batches"`
	BatchedRequests int64   `json:"batched_requests"`
	MeanBatchSize   float64 `json:"mean_batch_size"`

	// ShardBusyPct is the fraction of the fleet's shard-seconds spent
	// flying sorties since start.
	ShardBusyPct float64   `json:"shard_busy_pct"`
	ShardBusyS   []float64 `json:"shard_busy_s"`

	WaitLatency HistSnapshot `json:"wait_latency"`
	RunLatency  HistSnapshot `json:"run_latency"`
	E2ELatency  HistSnapshot `json:"e2e_latency"`
}

// Snapshot renders the counters.
func (m *Metrics) Snapshot() Snapshot {
	up := time.Since(m.start).Seconds()
	s := Snapshot{
		UptimeS:          up,
		Shards:           len(m.shardBusyNs),
		QueueDepth:       m.queueDepth.Load(),
		Submitted:        m.submitted.Load(),
		Accepted:         m.accepted.Load(),
		Rejected:         m.rejected.Load(),
		RejectedDraining: m.draining.Load(),
		Completed:        m.completed.Load(),
		Failed:           m.failed.Load(),
		Canceled:         m.canceled.Load(),
		Expired:          m.expired.Load(),
		Batches:          m.batches.Load(),
		BatchedRequests:  m.batchedRequests.Load(),
		WaitLatency:      m.wait.snapshot(),
		RunLatency:       m.run.snapshot(),
		E2ELatency:       m.e2e.snapshot(),
	}
	if s.Batches > 0 {
		s.MeanBatchSize = float64(m.batchSizeSum.Load()) / float64(s.Batches)
	}
	var busy float64
	s.ShardBusyS = make([]float64, len(m.shardBusyNs))
	for i := range m.shardBusyNs {
		sec := float64(m.shardBusyNs[i].Load()) / 1e9
		s.ShardBusyS[i] = sec
		busy += sec
	}
	if up > 0 && len(m.shardBusyNs) > 0 {
		s.ShardBusyPct = 100 * busy / (up * float64(len(m.shardBusyNs)))
	}
	return s
}
