package fleet

import (
	"context"
	"errors"
	"strconv"
	"time"

	"rfly/internal/obs"
	"rfly/internal/reader"
	"rfly/internal/runtime"
)

// Batching: one sortie serves every member of a batch. The flight, the
// relay supervision, and the end-of-mission SAR solve are the expensive
// parts of a mission and none of them scale with the tenant count, so
// coalescing compatible requests — same region, same channel plan —
// amortizes them. The batch's tag table is the concatenation of the
// members' tag lists; demux slices the engine's cumulative per-tag
// inventory back out by offset.

// tagSegment records where a member's tags landed in the batch config.
type tagSegment struct{ off, n int }

// MissionConfig builds the runtime config a single request flies under
// scheduler config c. seq stands in for an unset seed (the batch head's
// arrival sequence); a request with an explicit Seed ignores it. This is
// exported because the federation tier's failover proof needs to fly the
// exact config a node would — an in-process twin built from the same
// (Config, Request) pair is the bit-identical reference for a resumed
// mission.
func MissionConfig(c Config, req Request, seq uint64) runtime.Config {
	region := Regions[req.Region]
	seed := req.Seed
	if seed == 0 {
		// Arrival-sequence derived: distinct per batch, reproducible
		// from the mission record.
		seed = 0x9E3779B97F4A7C15 ^ seq
	}
	ch := req.ChannelHz
	if ch == 0 {
		ch = DefaultChannelHz
	}

	cfg := runtime.DefaultConfig(seed)
	cfg.Sorties = c.Sorties
	if cfg.Sorties <= 0 {
		cfg.Sorties = 1
	}
	cfg.TicksPerSortie = c.TicksPerSortie
	if cfg.TicksPerSortie <= 0 {
		cfg.TicksPerSortie = 12
	}
	cfg.CorridorLengthM = region.CorridorLengthM
	cfg.CorridorWidthM = region.CorridorWidthM
	cfg.ReaderPos = region.ReaderPos
	cfg.RelayPos = region.RelayPos
	cfg.ShadowSigmaDB = region.ShadowSigmaDB
	cfg.ChannelHz = ch
	cfg.SARPointsPerSortie = req.SARPoints
	cfg.Schedule.Events = nil

	// Service missions jitter their retry backoff by default: with a
	// worker per shard retrying in lockstep scale, synchronized backoff
	// windows would re-collide (the audit in reader/retry.go); the
	// draws come from each deployment's own stream, so shards never
	// share RNG state.
	pol := reader.DefaultRetryPolicy()
	pol.JitterSlots = 2
	if c.Retry.Set {
		pol = reader.RetryPolicy{
			MaxRetries:      c.Retry.MaxRetries,
			BackoffSlots:    c.Retry.BackoffSlots,
			MaxBackoffSlots: c.Retry.MaxBackoff,
			JitterSlots:     c.Retry.JitterSlots,
		}
	}
	cfg.Retry = pol

	cfg.Tags = append(cfg.Tags[:0], req.Tags...)
	return cfg
}

// missionConfig builds the runtime config one batch flies, plus each
// member's tag segment: the head's single-request config with the other
// members' tag lists appended.
func (s *Scheduler) missionConfig(batch []*mission) (runtime.Config, []tagSegment) {
	head := batch[0]
	cfg := MissionConfig(s.cfg, head.req, head.seq)
	segs := make([]tagSegment, len(batch))
	segs[0] = tagSegment{off: 0, n: len(head.req.Tags)}
	for i, m := range batch[1:] {
		segs[i+1] = tagSegment{off: len(cfg.Tags), n: len(m.req.Tags)}
		cfg.Tags = append(cfg.Tags, m.req.Tags...)
	}
	return cfg, segs
}

// batchBound computes the sortie context's deadline: the hard
// per-mission cap, tightened to the latest member deadline when every
// member carries one (a looser member keeps the sortie alive for the
// others).
func (s *Scheduler) batchBound(batch []*mission, now time.Time) time.Time {
	bound := now.Add(s.cfg.MaxMissionTime)
	latest := time.Time{}
	all := true
	for _, m := range batch {
		if m.req.Deadline.IsZero() {
			all = false
			break
		}
		if m.req.Deadline.After(latest) {
			latest = m.req.Deadline
		}
	}
	if all && latest.Before(bound) {
		bound = latest
	}
	return bound
}

// runBatch flies one batch on its shard and resolves every member.
// Every batch flies under its own flight recorder: a "fleet.batch" root
// span encloses per-member "fleet.admit" spans, the engine's sortie
// spans (the recorder rides the run context), and the final
// "fleet.demux" span; the snapshot is stored on every member so GET
// /v1/missions/{id}/trace can replay the sortie.
func (s *Scheduler) runBatch(shard int, batch []*mission) {
	start := time.Now()
	cfg, segs := s.missionConfig(batch)
	ctx, cancel := context.WithDeadline(s.runCtx, s.batchBound(batch, start))
	defer cancel()
	bs := &batchState{cancel: cancel, live: len(batch)}

	head := batch[0]
	rec := obs.NewRecorder(s.cfg.TraceCap)
	bctx, bspan := obs.StartSpan(obs.WithRecorder(ctx, rec), "fleet.batch")
	bspan.Str("region", head.req.Region).Int("shard", int64(shard)).Int("size", int64(len(batch)))

	s.mu.Lock()
	for _, m := range batch {
		m.status = StatusRunning
		m.started = start
		m.shard = shard
		m.batchSize = len(batch)
		m.batch = bs
		wait := start.Sub(m.submitted)
		s.m.wait.ObserveDuration(wait)
		_, adm := obs.StartSpan(bctx, "fleet.admit")
		adm.Str("mission", m.id).Float("wait_ms", float64(wait)/float64(time.Millisecond))
		adm.End()
	}
	s.mu.Unlock()
	s.m.batches.Add(1)
	s.m.batchSizeSum.Add(int64(len(batch)))
	if len(batch) > 1 {
		s.m.batchedRequests.Add(int64(len(batch)))
	}

	var res runtime.MissionResult
	var tagReads []uint32
	var lease *runtime.Lease
	var runErr error
	if len(head.req.Resume) > 0 {
		// Failover path: restore the engine from a checkpoint flown
		// elsewhere and fly only the remaining sorties. Resume requests
		// are exclusive, so the batch is this one mission.
		lease, runErr = s.lessor.LeaseFrom(shard, cfg, head.req.Resume)
		if runErr == nil {
			s.m.resumed.Add(1)
		}
	} else {
		lease, runErr = s.lessor.Lease(shard, cfg)
	}
	if runErr == nil {
		// Publish each committed sortie's checkpoint on the batch
		// records as the engine flies, so the replication path (GET
		// /v1/missions/{id}/checkpoint) always sees the latest
		// committed boundary, not just the end-of-mission drain blob.
		lease.Engine().CheckpointSink = func(done int, ckpt []byte) {
			s.m.checkpoints.Add(1)
			s.mu.Lock()
			for _, m := range batch {
				m.ckpt = ckpt
				m.ckptSortie = done
			}
			s.mu.Unlock()
		}
		// Capture-log publication rides the same commit boundary: the
		// mission's columnar capture log, whole, feeding download
		// (GET /v1/missions/{id}/capture), replay solves, and the
		// federation tier's incremental segment replication. The engine
		// only fires this for SAR missions.
		lease.Engine().CaptureSink = func(done int, log []byte) {
			s.m.capturePubs.Add(1)
			s.mu.Lock()
			for _, m := range batch {
				m.capture = log
				m.capSortie = done
			}
			s.mu.Unlock()
		}
		// Live mid-flight estimates ride the same commit boundary. The
		// solve localizes the batch's lead tag, so the estimate belongs
		// to the head record alone (mirroring demux's Loc ownership).
		lease.Engine().EstimateSink = func(est runtime.LiveEstimate) {
			s.mu.Lock()
			head.est = &est
			s.mu.Unlock()
		}
		// pprof label propagation: CPU samples taken during the sortie
		// carry the mission/region/shard labels.
		obs.Labeled(bctx, func(rctx context.Context) {
			res, runErr = lease.Engine().Run(rctx)
		}, "rfly_mission", head.id, "rfly_region", head.req.Region, "rfly_shard", strconv.Itoa(shard))
		tagReads = lease.Engine().TagReads()
		// Release between sorties only: Run has returned, so the engine
		// sits at a committed boundary (rolled back there on error).
		lease.Release()
	}
	elapsed := time.Since(start)
	s.m.run.ObserveDuration(elapsed)
	s.m.shardBusyNs[shard].Add(elapsed.Nanoseconds())

	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	ms := float64(elapsed) / float64(time.Millisecond)
	if s.ewmaBatchMs == 0 {
		s.ewmaBatchMs = ms
	} else {
		s.ewmaBatchMs = 0.7*s.ewmaBatchMs + 0.3*ms
	}
	totalAttempts := 0
	for _, sr := range res.Sorties {
		totalAttempts += sr.Attempts
	}
	_, dspan := obs.StartSpan(bctx, "fleet.demux")
	dspan.Int("members", int64(len(batch)))
	for i, m := range batch {
		switch {
		case m.canceled:
			s.finishLocked(m, StatusCanceled, nil, "canceled in flight")
		case runErr != nil && errors.Is(runErr, context.DeadlineExceeded):
			s.finishLocked(m, StatusExpired, nil, "mission deadline exceeded: "+runErr.Error())
		case runErr != nil:
			s.finishLocked(m, StatusFailed, nil, runErr.Error())
		case !m.req.Deadline.IsZero() && now.After(m.req.Deadline):
			s.finishLocked(m, StatusExpired, nil, "completed after request deadline")
		default:
			s.finishLocked(m, StatusDone, demux(m, segs[i], res, tagReads, totalAttempts, len(cfg.Tags)), "")
		}
	}
	dspan.End()
	bspan.Bool("failed", runErr != nil).End()
	trace := rec.Snapshot()
	for _, m := range batch {
		m.trace = trace
	}
}

// demux slices one member's outcome out of the batch mission result.
func demux(m *mission, seg tagSegment, res runtime.MissionResult, tagReads []uint32,
	totalAttempts, totalTags int) *Outcome {
	out := &Outcome{Sorties: len(res.Sorties)}
	if seg.off+seg.n <= len(tagReads) {
		out.TagReads = append([]uint32(nil), tagReads[seg.off:seg.off+seg.n]...)
		for _, n := range out.TagReads {
			out.Reads += int(n)
		}
	}
	if totalTags > 0 {
		// Attempts are round-robin across the batch tag table; this
		// member's share is proportional to its tag count.
		out.Attempts = totalAttempts * seg.n / totalTags
	}
	// The mission localizes the lead tag; that belongs to the batch
	// head (segment offset zero).
	if res.LocOK && seg.off == 0 {
		out.LocOK = true
		out.LocX, out.LocY = res.LocX, res.LocY
	}
	return out
}
