package fleet

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"rfly/internal/runtime"
)

// Tests for the federation-facing fleet surface: exclusive admission,
// live checkpoint publication, the resume lease path, and the replica
// store. These are the node-side halves of the failover contract; the
// coordinator-side halves live in internal/federation.

// multiSortieConfig flies enough sorties that a mid-flight checkpoint
// exists before the mission ends.
func multiSortieConfig(shards int) Config {
	return Config{Shards: shards, Sorties: 3, TicksPerSortie: 4}
}

// TestExclusiveNeverCoalesces queues an exclusive request alongside
// batchable ones with the same batch key on a stopped scheduler, then
// starts it: the exclusive mission must fly alone.
func TestExclusiveNeverCoalesces(t *testing.T) {
	s, err := New(fastConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	excl := submitOK(t, s, Request{Region: "dock", Tags: testTags(1), Exclusive: true, Priority: 1})
	var others []string
	for i := 0; i < 3; i++ {
		others = append(others, submitOK(t, s, Request{Region: "dock", Tags: testTags(uint16(i + 2))}))
	}
	s.Start()
	defer s.Stop(context.Background())

	if v := waitDone(t, s, excl); v.BatchSize != 1 {
		t.Fatalf("exclusive mission flew in a batch of %d", v.BatchSize)
	}
	for _, id := range others {
		if v := waitDone(t, s, id); v.Status != StatusDone {
			t.Fatalf("batchable mission %s finished %s: %s", id, v.Status, v.Err)
		}
	}
	// And an exclusive head must not pull compatible followers in either:
	// the three batchable missions were free to coalesce among themselves
	// only.
	if got := s.Metrics().Snapshot().MeanBatchSize; got > 3 {
		t.Fatalf("mean batch size %.1f implies the exclusive mission coalesced", got)
	}
}

// TestCheckpointPublication flies an exclusive multi-sortie mission and
// asserts the published checkpoint advances to the full sortie count,
// with bytes a fresh engine accepts.
func TestCheckpointPublication(t *testing.T) {
	s, err := New(multiSortieConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Stop(context.Background())

	req := Request{Region: "dock", Tags: testTags(7), Seed: 42, Exclusive: true}
	id := submitOK(t, s, req)
	if v := waitDone(t, s, id); v.Status != StatusDone {
		t.Fatalf("mission finished %s: %s", v.Status, v.Err)
	}
	data, sortie, ok := s.Checkpoint(id)
	if !ok {
		t.Fatal("no checkpoint published for a completed mission")
	}
	if sortie != 3 {
		t.Fatalf("final checkpoint covers %d sorties, want 3", sortie)
	}
	if _, err := runtime.Restore(MissionConfig(s.Config(), req, 0), data); err != nil {
		t.Fatalf("published checkpoint does not restore: %v", err)
	}
	if got := s.Metrics().Snapshot().Checkpoints; got != 3 {
		t.Fatalf("checkpoint counter %d, want 3", got)
	}
}

// TestResumeBitIdentical is the node-side failover contract: fly a
// mission to completion on one scheduler, take its first-sortie
// checkpoint, resume it on a second scheduler, and require the resumed
// localization to be bit-identical to the uninterrupted run.
func TestResumeBitIdentical(t *testing.T) {
	cfg := multiSortieConfig(1)
	req := Request{Region: "corridor-east", Tags: testTags(3), Seed: 99, Exclusive: true, SARPoints: 6}

	// Primary: capture the mid-flight checkpoint via the live sink.
	primary, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	primary.Start()
	id := submitOK(t, primary, req)
	// Poll for the first committed checkpoint while the mission flies
	// (it may already be past sortie 1; any boundary works).
	var ckpt []byte
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if data, _, ok := primary.Checkpoint(id); ok {
			ckpt = data
			break
		}
		time.Sleep(time.Millisecond)
	}
	if ckpt == nil {
		t.Fatal("no checkpoint appeared while the mission flew")
	}
	v := waitDone(t, primary, id)
	if v.Status != StatusDone || v.Outcome == nil || !v.Outcome.LocOK {
		t.Fatalf("primary mission did not localize: %+v", v)
	}
	primary.Stop(context.Background())

	// Replica node: resume from the captured boundary.
	replica, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	replica.Start()
	defer replica.Stop(context.Background())
	rreq := req
	rreq.Resume = ckpt
	rid := submitOK(t, replica, rreq)
	rv := waitDone(t, replica, rid)
	if rv.Status != StatusDone || rv.Outcome == nil || !rv.Outcome.LocOK {
		t.Fatalf("resumed mission did not localize: %+v", rv)
	}
	if rv.Outcome.LocX != v.Outcome.LocX || rv.Outcome.LocY != v.Outcome.LocY {
		t.Fatalf("resumed localization (%v,%v) != primary (%v,%v)",
			rv.Outcome.LocX, rv.Outcome.LocY, v.Outcome.LocX, v.Outcome.LocY)
	}
	if len(rv.Outcome.TagReads) != len(v.Outcome.TagReads) {
		t.Fatalf("tag read lengths differ: %d vs %d", len(rv.Outcome.TagReads), len(v.Outcome.TagReads))
	}
	for i := range rv.Outcome.TagReads {
		if rv.Outcome.TagReads[i] != v.Outcome.TagReads[i] {
			t.Fatalf("tag %d reads differ: %d vs %d", i, rv.Outcome.TagReads[i], v.Outcome.TagReads[i])
		}
	}
	if got := replica.Metrics().Snapshot().Resumed; got != 1 {
		t.Fatalf("resumed counter %d, want 1", got)
	}
}

// TestResumeRejectsCorruptCheckpoint: a mangled blob must fail at
// admission with the decoder's typed error, not on the shard.
func TestResumeRejectsCorruptCheckpoint(t *testing.T) {
	s, err := New(multiSortieConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	req := Request{Region: "dock", Tags: testTags(1), Seed: 5, Resume: []byte("not a checkpoint")}
	if _, err := s.Submit(req); err == nil {
		t.Fatal("corrupt resume blob admitted")
	} else if !strings.Contains(err.Error(), "resume checkpoint rejected") {
		t.Fatalf("unexpected rejection: %v", err)
	}
	// And a seedless resume is rejected before the decode is even tried.
	req.Seed = 0
	if _, err := s.Submit(req); err == nil || !strings.Contains(err.Error(), "seed") {
		t.Fatalf("seedless resume rejection: %v", err)
	}
}

// TestReplicaStore exercises put/get/drop, monotonic sortie counts, and
// both budget caps.
func TestReplicaStore(t *testing.T) {
	cfg := fastConfig(1)
	cfg.MaxReplicas = 2
	cfg.MaxReplicaBytes = 64
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	blob := []byte("0123456789")
	if err := s.PutReplica("m-1", 1, blob); err != nil {
		t.Fatal(err)
	}
	if err := s.PutReplica("m-1", 2, blob); err != nil {
		t.Fatalf("forward overwrite rejected: %v", err)
	}
	if err := s.PutReplica("m-1", 1, blob); err == nil {
		t.Fatal("stale replica accepted")
	}
	sortie, data, ok := s.GetReplica("m-1")
	if !ok || sortie != 2 || !bytes.Equal(data, blob) {
		t.Fatalf("get returned (%d, %q, %v)", sortie, data, ok)
	}
	if err := s.PutReplica("m-2", 1, blob); err != nil {
		t.Fatal(err)
	}
	if err := s.PutReplica("m-3", 1, blob); err == nil {
		t.Fatal("count cap not enforced")
	}
	if !s.DropReplica("m-2") {
		t.Fatal("drop of held replica failed")
	}
	if s.DropReplica("m-2") {
		t.Fatal("double drop reported success")
	}
	if err := s.PutReplica("m-big", 1, make([]byte, 60)); err == nil {
		t.Fatal("byte budget not enforced")
	}
	snap := s.Metrics().Snapshot()
	if snap.ReplicasHeld != 1 || snap.ReplicaPuts != 3 {
		t.Fatalf("replica gauges: held=%d puts=%d", snap.ReplicasHeld, snap.ReplicaPuts)
	}
}

// TestRetryAfterMonotoneReasonable drives a seeded arrival spike into a
// full queue on a stopped scheduler and checks every 429's Retry-After
// estimate: never negative, never absurd relative to the queue depth,
// and non-decreasing as depth grows (satellite: admission under burst).
func TestRetryAfterMonotoneReasonable(t *testing.T) {
	cfg := fastConfig(2)
	cfg.QueueCap = 8
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Seed the EWMA as a worker would after a 200ms batch.
	s.mu.Lock()
	s.ewmaBatchMs = 200
	s.mu.Unlock()

	for i := 0; i < cfg.QueueCap; i++ {
		submitOK(t, s, Request{Region: "dock", Tags: testTags(uint16(i + 1))})
	}
	// The spike: every further submit is a 429. The queue is full and
	// static, so the estimate must be stable and sane throughout.
	var last time.Duration
	for i := 0; i < 50; i++ {
		_, err := s.Submit(Request{Region: "dock", Tags: testTags(200)})
		var backlog ErrBacklog
		if !asBacklog(err, &backlog) {
			t.Fatalf("spike submit %d: %v", i, err)
		}
		ra := backlog.RetryAfter
		if ra < 0 {
			t.Fatalf("negative Retry-After %s", ra)
		}
		if ra < time.Second {
			t.Fatalf("Retry-After %s under the 1s floor", ra)
		}
		// Bounded by depth: the estimate can never exceed the whole
		// backlog flying serially at the observed batch time.
		max := time.Duration(backlog.Depth)*200*time.Millisecond + time.Second
		if ra > max {
			t.Fatalf("Retry-After %s exceeds depth bound %s (depth %d)", ra, max, backlog.Depth)
		}
		if last != 0 && ra != last {
			t.Fatalf("estimate moved from %s to %s with a static queue", last, ra)
		}
		last = ra
	}
}

func asBacklog(err error, out *ErrBacklog) bool {
	b, ok := err.(ErrBacklog)
	if ok {
		*out = b
	}
	return ok
}
