// Package fleet is RFly's mission service layer: a sharded scheduler
// that turns the single-shot supervised runtime (internal/runtime) into
// a long-running, multi-tenant inventory service. Clients submit
// mission requests ("where are these tags in region R"); an admission
// controller holds them in a bounded priority queue with explicit
// backpressure; a batcher coalesces compatible requests — same
// warehouse region, same channel plan — into one sortie so the
// expensive flight and SAR solve are amortized across tenants; and a
// fixed pool of shard workers, each leasing exactly one mission engine
// at a time (runtime.Lessor), flies the batches. cmd/rfly-serve fronts
// the scheduler with an HTTP/JSON API and cmd/rfly-load drives it.
package fleet

import (
	"fmt"
	"time"

	"rfly/internal/geom"
	"rfly/internal/obs"
	"rfly/internal/runtime"
)

// Region is a warehouse region a mission can target: one corridor
// geometry with a fixed reader installation and relay hover plan.
// Region identity (the Name) is half of the batch-compatibility key —
// two requests for the same region can ride the same sortie.
type Region struct {
	Name            string
	CorridorLengthM float64
	CorridorWidthM  float64
	ReaderPos       geom.Point
	RelayPos        geom.Point
	ShadowSigmaDB   float64
}

// Regions is the service's region table. The seed entries model two
// aisles of the Figure-11 corridor plus a short receiving dock; a
// deployment would load this from configuration.
var Regions = map[string]Region{
	"corridor-east": {
		Name:            "corridor-east",
		CorridorLengthM: 40, CorridorWidthM: 3,
		ReaderPos:     geom.P(0.5, 1.5, 1.2),
		RelayPos:      geom.P(28.2, 1.5, 1.2),
		ShadowSigmaDB: 3,
	},
	"corridor-west": {
		Name:            "corridor-west",
		CorridorLengthM: 40, CorridorWidthM: 3,
		ReaderPos:     geom.P(0.5, 1.2, 1.2),
		RelayPos:      geom.P(26.0, 1.2, 1.2),
		ShadowSigmaDB: 3,
	},
	"dock": {
		Name:            "dock",
		CorridorLengthM: 18, CorridorWidthM: 4,
		ReaderPos:     geom.P(0.5, 2.0, 1.2),
		RelayPos:      geom.P(12.0, 2.0, 1.2),
		ShadowSigmaDB: 4,
	},
}

// DefaultChannelHz is the channel plan used when a request leaves it
// unset (US band center, matching loc.DefaultConfig's carrier).
const DefaultChannelHz = 915e6

// Request is one tenant's inventory ask.
type Request struct {
	// Region names an entry in the Regions table.
	Region string
	// ChannelHz is the reader channel plan; requests only batch with
	// others on the same plan. Zero means DefaultChannelHz.
	ChannelHz float64
	// Tags are the targets to inventory, in region coordinates.
	Tags []runtime.TagSpec
	// Priority orders admission: higher drains first. Ties are FIFO.
	Priority int
	// Seed pins the mission RNG stream; zero lets the batch head's
	// arrival sequence pick one.
	Seed uint64
	// Deadline, when non-zero, bounds the whole request: it maps onto
	// the mission context's deadline, and a request whose deadline
	// passes before its sortie lands is reported Expired.
	Deadline time.Time
	// SARPoints asks for an end-of-sortie SAR localization pass with
	// that many aperture captures (0 = inventory only; localization is
	// reported for the batch head's first tag).
	SARPoints int
	// Exclusive keeps the request out of batch coalescing: it flies a
	// single-tenant sortie. The federation tier sets this on every
	// forwarded mission so the per-mission checkpoint is a complete,
	// relocatable engine snapshot (a coalesced sortie's checkpoint spans
	// the whole batch's tag table and cannot be resumed per-tenant).
	Exclusive bool
	// Resume, when set, is a sortie-boundary checkpoint taken by an
	// engine that flew this same request elsewhere (same seed, region,
	// channel, tags, and fleet shape). The mission restores from it and
	// flies only the remaining sorties — the node-death failover path.
	// Resume implies Exclusive and requires an explicit Seed.
	Resume []byte
}

// exclusive reports whether the request must fly a single-tenant sortie.
func (r Request) exclusive() bool { return r.Exclusive || len(r.Resume) > 0 }

// batchKey is the coalescing identity: requests with equal keys may
// share a sortie.
func (r Request) batchKey() string {
	ch := r.ChannelHz
	if ch == 0 {
		ch = DefaultChannelHz
	}
	return fmt.Sprintf("%s@%.0f", r.Region, ch)
}

func (r Request) validate(maxTags int) error {
	if _, ok := Regions[r.Region]; !ok {
		return fmt.Errorf("fleet: unknown region %q", r.Region)
	}
	if len(r.Tags) == 0 {
		return fmt.Errorf("fleet: request needs at least one tag")
	}
	if maxTags > 0 && len(r.Tags) > maxTags {
		return fmt.Errorf("fleet: request has %d tags, limit is %d", len(r.Tags), maxTags)
	}
	if r.SARPoints < 0 || r.SARPoints > 64 {
		return fmt.Errorf("fleet: sar_points %d out of range [0,64]", r.SARPoints)
	}
	if len(r.Resume) > 0 && r.Seed == 0 {
		return fmt.Errorf("fleet: a resume request needs an explicit seed (the checkpoint was taken under one)")
	}
	return nil
}

// Status is a mission record's lifecycle state.
type Status string

const (
	StatusQueued   Status = "queued"
	StatusRunning  Status = "running"
	StatusDone     Status = "done"
	StatusFailed   Status = "failed"
	StatusCanceled Status = "canceled"
	// StatusExpired means the request's deadline passed before its
	// sortie completed.
	StatusExpired Status = "expired"
)

// Terminal reports whether the status is final.
func (s Status) Terminal() bool {
	switch s {
	case StatusDone, StatusFailed, StatusCanceled, StatusExpired:
		return true
	}
	return false
}

// Outcome is the per-request slice of a completed batch mission.
type Outcome struct {
	// Reads/Attempts cover this request's tags only.
	Reads    int
	Attempts int
	// TagReads is index-aligned with Request.Tags.
	TagReads []uint32
	// Loc carries the end-of-mission SAR localization when the request
	// owned the batch's lead tag and asked for SAR points.
	LocOK      bool
	LocX, LocY float64
	// Sorties is how many sorties the batch mission committed.
	Sorties int
}

// mission is the scheduler's internal record. All mutable fields are
// guarded by the scheduler's mutex.
type mission struct {
	id  string
	seq uint64
	req Request

	status  Status
	outcome *Outcome
	errMsg  string

	submitted time.Time
	started   time.Time
	finished  time.Time

	batchSize int
	shard     int

	canceled bool
	// batch is set while the mission is riding a live sortie; used to
	// propagate cancellation when every member has canceled.
	batch *batchState

	// trace is the batch sortie's flight-recorder span dump, captured
	// when the batch resolves (shared across the batch's members; nil
	// until the mission has flown).
	trace []obs.SpanRecord

	// ckpt is the engine's latest sortie-boundary checkpoint, published
	// live while the batch flies (the replication source). ckptSortie is
	// how many sorties it covers.
	ckpt       []byte
	ckptSortie int

	// capture is the mission's columnar capture log, published whole at
	// the same commit boundary (SAR missions only). capSortie is how many
	// sorties it covers. It feeds download, replay solves, and
	// incremental segment replication.
	capture   []byte
	capSortie int

	// est is the engine's latest live localization estimate, published
	// after each sortie commit while the batch flies. Like the outcome's
	// Loc fields it localizes the batch's lead tag, so only the batch
	// head's record carries one. Nil until the accumulated aperture
	// supports a solve.
	est *runtime.LiveEstimate

	// done closes when the record reaches a terminal status.
	done chan struct{}
}

// View is a read-only snapshot of a mission record, safe to hand out of
// the scheduler's lock.
type View struct {
	ID        string
	Region    string
	Status    Status
	Outcome   *Outcome
	Err       string
	BatchSize int
	Shard     int
	Submitted time.Time
	Started   time.Time
	Finished  time.Time
	// Estimate is the latest mid-flight localization estimate (batch
	// head only, once enough aperture has committed); nil otherwise. It
	// keeps updating while the mission runs and freezes at completion.
	Estimate *runtime.LiveEstimate
}

func (m *mission) view() View {
	v := View{
		ID:        m.id,
		Region:    m.req.Region,
		Status:    m.status,
		Err:       m.errMsg,
		BatchSize: m.batchSize,
		Shard:     m.shard,
		Submitted: m.submitted,
		Started:   m.started,
		Finished:  m.finished,
	}
	if m.outcome != nil {
		o := *m.outcome
		o.TagReads = append([]uint32(nil), m.outcome.TagReads...)
		v.Outcome = &o
	}
	if m.est != nil {
		e := *m.est
		v.Estimate = &e
	}
	return v
}
