package fleet

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"rfly/internal/obs"
)

// HTTP error paths and the trace endpoint, exercised against the real
// mux exactly as the daemon serves it.

func httpDelete(t *testing.T, ts *httptest.Server, path string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, ts.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestHTTPCancelErrorPaths(t *testing.T) {
	s, err := New(fastConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Drain(context.Background())
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	// DELETE of a mission that never existed: 404 with a structured body.
	resp := httpDelete(t, ts, "/v1/missions/m-999999")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("delete unknown mission: status %d, want 404", resp.StatusCode)
	}
	var eresp ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&eresp); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if eresp.Error == "" {
		t.Fatal("404 body missing error message")
	}

	// Cancel after completion: the record is terminal, so the cancel is
	// a conflict, and the body shows the mission's actual final state.
	sresp := postMission(t, ts, SubmitRequest{Region: "dock", Tags: tagInputs(3)})
	var sr SubmitResponse
	if err := json.NewDecoder(sresp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	waitDone(t, s, sr.ID)

	cresp := httpDelete(t, ts, "/v1/missions/"+sr.ID)
	if cresp.StatusCode != http.StatusConflict {
		t.Fatalf("cancel-after-completion: status %d, want 409", cresp.StatusCode)
	}
	var mr MissionResponse
	if err := json.NewDecoder(cresp.Body).Decode(&mr); err != nil {
		t.Fatal(err)
	}
	cresp.Body.Close()
	if mr.Status != StatusDone {
		t.Fatalf("conflict body reports status %s, want %s", mr.Status, StatusDone)
	}
}

func TestHTTPTraceEndpoint(t *testing.T) {
	cfg := fastConfig(1)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	// Unknown mission: 404.
	resp, err := ts.Client().Get(ts.URL + "/v1/missions/m-999999/trace")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("trace of unknown mission: status %d, want 404", resp.StatusCode)
	}
	resp.Body.Close()

	// Queued mission (scheduler not started): known, but never flew — a
	// 404 distinct from the unknown-ID case.
	qresp := postMission(t, ts, SubmitRequest{Region: "dock", Tags: tagInputs(1)})
	var sr SubmitResponse
	if err := json.NewDecoder(qresp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	qresp.Body.Close()
	tresp, err := ts.Client().Get(ts.URL + "/v1/missions/" + sr.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	if tresp.StatusCode != http.StatusNotFound {
		t.Fatalf("trace of unflown mission: status %d, want 404", tresp.StatusCode)
	}
	tresp.Body.Close()

	// Fly it and fetch the trace: the span dump must rebuild into a
	// well-formed tree whose fleet.batch root encloses the engine's
	// sortie spans and the demux.
	s.Start()
	defer s.Drain(context.Background())
	waitDone(t, s, sr.ID)

	fresp, err := ts.Client().Get(ts.URL + "/v1/missions/" + sr.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	if fresp.StatusCode != http.StatusOK {
		t.Fatalf("trace of flown mission: status %d, want 200", fresp.StatusCode)
	}
	var tr TraceResponse
	if err := json.NewDecoder(fresp.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	fresp.Body.Close()
	if tr.ID != sr.ID || len(tr.Spans) == 0 {
		t.Fatalf("trace response %s with %d spans", tr.ID, len(tr.Spans))
	}
	tree, err := obs.BuildTree(tr.Spans)
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.CheckEnclosure(); err != nil {
		t.Fatal(err)
	}
	batches := tree.Find("fleet.batch")
	if len(batches) != 1 {
		t.Fatalf("trace has %d fleet.batch spans, want 1", len(batches))
	}
	for _, name := range []string{"fleet.admit", "fleet.demux", "runtime.sortie"} {
		nodes := tree.Find(name)
		if len(nodes) == 0 {
			t.Fatalf("trace has no %s span", name)
		}
		for _, n := range nodes {
			if tree.Ancestor(n, "fleet.batch") == nil {
				t.Errorf("%s span %d is not nested under fleet.batch", name, n.ID)
			}
		}
	}
}

func TestHTTPMetricsIncludesObs(t *testing.T) {
	s, err := New(fastConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Shards int             `json:"shards"`
		Obs    json.RawMessage `json:"obs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Shards != 1 {
		t.Fatalf("metrics shards %d, want 1", body.Shards)
	}
	if len(body.Obs) == 0 {
		t.Fatal("/metrics missing the obs registry section")
	}
	var reg obs.RegistrySnapshot
	if err := json.Unmarshal(body.Obs, &reg); err != nil {
		t.Fatalf("obs section does not decode as a registry snapshot: %v", err)
	}
}
