package fleet

import (
	"fmt"
	"sync"
)

// Replica store: each serve node holds the sortie checkpoints of
// missions flying on a federation peer, so the coordinator can re-lease
// a dead node's in-flight work here from the last replicated boundary.
// The store is deliberately dumb — opaque bytes keyed by the
// coordinator's mission ID, bounded in count and total size so a
// misbehaving peer cannot balloon a node's memory. Overwriting an
// existing ID is the common case (each committed sortie supersedes the
// last), and a replica only ever moves monotonically forward: a stale
// sortie count is rejected, which protects the failover path from a
// delayed replication racing a newer one.

// replicaErr is every replica-store rejection (bad input, staleness,
// budget); the HTTP layer maps it to 4xx.
type replicaErr struct{ msg string }

func (e replicaErr) Error() string { return "fleet: " + e.msg }

// replica is one held checkpoint.
type replica struct {
	sortie int
	data   []byte
}

type replicaStore struct {
	mu       sync.Mutex
	maxCount int
	maxBytes int64
	bytes    int64
	m        map[string]replica
}

func newReplicaStore(maxCount int, maxBytes int64) *replicaStore {
	return &replicaStore{
		maxCount: maxCount,
		maxBytes: maxBytes,
		m:        make(map[string]replica),
	}
}

func (r *replicaStore) put(id string, sortie int, data []byte) error {
	if id == "" {
		return replicaErr{"replica needs a mission id"}
	}
	if len(data) == 0 {
		return replicaErr{"replica needs a non-empty checkpoint"}
	}
	if sortie <= 0 {
		return replicaErr{fmt.Sprintf("replica sortie count %d must be positive", sortie)}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	old, exists := r.m[id]
	if exists && sortie < old.sortie {
		return replicaErr{fmt.Sprintf("stale replica for %s: held sortie %d, offered %d",
			id, old.sortie, sortie)}
	}
	newBytes := r.bytes + int64(len(data))
	if exists {
		newBytes -= int64(len(old.data))
	} else if len(r.m) >= r.maxCount {
		return replicaErr{fmt.Sprintf("replica store full (%d held)", len(r.m))}
	}
	if newBytes > r.maxBytes {
		return replicaErr{fmt.Sprintf("replica store over byte budget (%d + %d > %d)",
			r.bytes, len(data), r.maxBytes)}
	}
	r.m[id] = replica{sortie: sortie, data: append([]byte(nil), data...)}
	r.bytes = newBytes
	return nil
}

func (r *replicaStore) get(id string) (sortie int, data []byte, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	rep, ok := r.m[id]
	if !ok {
		return 0, nil, false
	}
	return rep.sortie, append([]byte(nil), rep.data...), true
}

func (r *replicaStore) drop(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	rep, ok := r.m[id]
	if !ok {
		return false
	}
	r.bytes -= int64(len(rep.data))
	delete(r.m, id)
	return true
}

func (r *replicaStore) stats() (held, bytes int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return int64(len(r.m)), r.bytes
}

// putCapture installs or extends a held capture-log replica. after is
// the sortie count the sender believes this node already holds: zero
// means data is a complete log (install or monotone replace — the
// first-sync and re-sync path), a positive value means data is the raw
// tail of segments after that sortie and must extend a replica held at
// exactly that count. The store never decodes the bytes; a mismatched
// extension is rejected so the sender falls back to a full sync, and
// structural validation happens where it matters — when a coordinator
// replays the log after a failover.
func (r *replicaStore) putCapture(id string, after, sortie int, data []byte) error {
	if after == 0 {
		return r.put(id, sortie, data)
	}
	if id == "" {
		return replicaErr{"replica needs a mission id"}
	}
	if len(data) == 0 {
		return replicaErr{"capture tail needs non-empty segment bytes"}
	}
	if after < 0 || sortie <= after {
		return replicaErr{fmt.Sprintf("capture tail range (%d, %d] is not ahead", after, sortie)}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	old, exists := r.m[id]
	if !exists {
		return replicaErr{fmt.Sprintf("no capture base for %s to extend past sortie %d", id, after)}
	}
	if old.sortie != after {
		return replicaErr{fmt.Sprintf("capture base for %s holds sortie %d, tail extends %d",
			id, old.sortie, after)}
	}
	newBytes := r.bytes + int64(len(data))
	if newBytes > r.maxBytes {
		return replicaErr{fmt.Sprintf("replica store over byte budget (%d + %d > %d)",
			r.bytes, len(data), r.maxBytes)}
	}
	r.m[id] = replica{sortie: sortie, data: append(old.data, data...)}
	r.bytes = newBytes
	return nil
}
