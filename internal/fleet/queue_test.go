package fleet

import (
	"testing"

	"rfly/internal/runtime"
)

func qm(seq uint64, prio int, region string) *mission {
	return &mission{
		id:  region,
		seq: seq,
		req: Request{
			Region:   region,
			Priority: prio,
			Tags:     []runtime.TagSpec{{ID: 1, X: 1, Y: 1, Z: 1}},
		},
		status: StatusQueued,
		done:   make(chan struct{}),
	}
}

func TestQueueOrdering(t *testing.T) {
	var q prioQueue
	q.push(qm(1, 0, "a"))
	q.push(qm(2, 5, "b"))
	q.push(qm(3, 5, "c"))
	q.push(qm(4, 1, "d"))

	var got []uint64
	for {
		m := q.pop()
		if m == nil {
			break
		}
		got = append(got, m.seq)
	}
	// Priority desc, FIFO within a priority.
	want := []uint64{2, 3, 4, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order %v, want %v", got, want)
		}
	}
}

func TestTakeCompatible(t *testing.T) {
	var q prioQueue
	east1 := qm(1, 0, "corridor-east")
	west := qm(2, 0, "corridor-west")
	east2 := qm(3, 7, "corridor-east")
	east3 := qm(4, 0, "corridor-east")
	canceledEast := qm(5, 9, "corridor-east")
	canceledEast.canceled = true
	for _, m := range []*mission{east1, west, east2, east3, canceledEast} {
		q.push(m)
	}

	got := q.takeCompatible(east1.req.batchKey(), 2)
	if len(got) != 2 {
		t.Fatalf("took %d, want 2", len(got))
	}
	// Best-first: priority 7 first, then the older priority-0 entry;
	// the canceled entry must be skipped despite its priority.
	if got[0] != east2 || got[1] != east1 {
		t.Fatalf("took %v,%v; want east2,east1", got[0].seq, got[1].seq)
	}
	if q.Len() != 3 {
		t.Fatalf("queue has %d left, want 3", q.Len())
	}
	// The survivors still pop in heap order.
	if m := q.pop(); m != canceledEast {
		t.Fatalf("expected canceled head (prio 9), got seq %d", m.seq)
	}
	if m := q.pop(); m != west {
		t.Fatalf("expected west, got seq %d", m.seq)
	}
	if m := q.pop(); m != east3 {
		t.Fatalf("expected east3, got seq %d", m.seq)
	}
	if q.takeCompatible("nope@915000000", 4) != nil {
		t.Fatal("takeCompatible on empty queue returned entries")
	}
}

func TestBatchKeySeparatesChannels(t *testing.T) {
	a := Request{Region: "corridor-east"}
	b := Request{Region: "corridor-east", ChannelHz: DefaultChannelHz}
	c := Request{Region: "corridor-east", ChannelHz: 920e6}
	if a.batchKey() != b.batchKey() {
		t.Fatal("default channel and explicit default should share a key")
	}
	if a.batchKey() == c.batchKey() {
		t.Fatal("different channel plans must not share a key")
	}
}
