package fleet

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"rfly/internal/runtime"
)

// fastConfig keeps test missions tiny: one 4-tick sortie.
func fastConfig(shards int) Config {
	return Config{Shards: shards, Sorties: 1, TicksPerSortie: 4}
}

func testTags(id uint16) []runtime.TagSpec {
	return []runtime.TagSpec{{ID: id, X: 29, Y: 1.5, Z: 1.0}}
}

func submitOK(t *testing.T, s *Scheduler, req Request) string {
	t.Helper()
	id, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func waitDone(t *testing.T, s *Scheduler, id string) View {
	t.Helper()
	ch := s.Done(id)
	if ch == nil {
		t.Fatalf("unknown mission %s", id)
	}
	select {
	case <-ch:
	case <-time.After(60 * time.Second):
		t.Fatalf("mission %s did not terminate", id)
	}
	v, _ := s.Get(id)
	return v
}

func TestSubmitValidation(t *testing.T) {
	s, err := New(fastConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(Request{Region: "atlantis", Tags: testTags(1)}); err == nil {
		t.Fatal("unknown region accepted")
	}
	if _, err := s.Submit(Request{Region: "dock"}); err == nil {
		t.Fatal("tagless request accepted")
	}
	long := make([]runtime.TagSpec, 9)
	for i := range long {
		long[i] = runtime.TagSpec{ID: uint16(i + 1), X: 1, Y: 1, Z: 1}
	}
	if _, err := s.Submit(Request{Region: "dock", Tags: long}); err == nil {
		t.Fatal("oversized tag list accepted")
	}
}

// TestBackpressureOverfill fills the queue on a stopped scheduler and
// asserts the bounded queue rejects with a usable Retry-After.
func TestBackpressureOverfill(t *testing.T) {
	cfg := fastConfig(1)
	cfg.QueueCap = 3
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		submitOK(t, s, Request{Region: "dock", Tags: testTags(uint16(i + 1))})
	}
	_, err = s.Submit(Request{Region: "dock", Tags: testTags(9)})
	var backlog ErrBacklog
	if !errors.As(err, &backlog) {
		t.Fatalf("overfull queue returned %v, want ErrBacklog", err)
	}
	if backlog.Depth != 3 {
		t.Fatalf("backlog depth %d, want 3", backlog.Depth)
	}
	if backlog.RetryAfter < time.Second {
		t.Fatalf("RetryAfter %v, want >= 1s", backlog.RetryAfter)
	}
	if got := s.Metrics().Snapshot().Rejected; got != 1 {
		t.Fatalf("rejected counter %d, want 1", got)
	}
}

// TestBatchingCoalesces pre-fills the queue with compatible requests,
// then starts the fleet: one sortie must serve all of them, which the
// metrics — the acceptance surface — must show.
func TestBatchingCoalesces(t *testing.T) {
	cfg := fastConfig(1)
	cfg.MaxBatch = 4
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Three compatible (same region + default channel), one not.
	a := submitOK(t, s, Request{Region: "corridor-east", Tags: testTags(1)})
	b := submitOK(t, s, Request{Region: "corridor-east", Tags: testTags(2)})
	c := submitOK(t, s, Request{Region: "corridor-east", Tags: testTags(3)})
	d := submitOK(t, s, Request{Region: "corridor-west", Tags: testTags(4)})
	s.Start()
	defer s.Drain(context.Background())

	for _, id := range []string{a, b, c, d} {
		v := waitDone(t, s, id)
		if v.Status != StatusDone {
			t.Fatalf("mission %s finished %s (%s)", id, v.Status, v.Err)
		}
	}
	for _, id := range []string{a, b, c} {
		v, _ := s.Get(id)
		if v.BatchSize != 3 {
			t.Fatalf("mission %s rode a batch of %d, want 3", id, v.BatchSize)
		}
		if v.Outcome == nil || len(v.Outcome.TagReads) != 1 {
			t.Fatalf("mission %s outcome not demuxed per-request: %+v", id, v.Outcome)
		}
	}
	snap := s.Metrics().Snapshot()
	if snap.Batches != 2 {
		t.Fatalf("batches = %d, want 2 (one coalesced, one solo)", snap.Batches)
	}
	if snap.BatchedRequests < 2 {
		t.Fatalf("batched_requests = %d, want >= 2 (coalescing must be visible in metrics)", snap.BatchedRequests)
	}
	if snap.MeanBatchSize != 2 {
		t.Fatalf("mean_batch_size = %v, want 2", snap.MeanBatchSize)
	}
}

// TestConcurrent64On4Shards is the acceptance load: 64 concurrent
// mission requests against a 4-shard fleet with a bounded queue; every
// admitted mission must terminate, and rejected submissions must carry
// the retry hint.
func TestConcurrent64On4Shards(t *testing.T) {
	cfg := fastConfig(4)
	cfg.QueueCap = 64
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Drain(context.Background())

	const n = 64
	regions := []string{"corridor-east", "corridor-west", "dock"}
	ids := make([]string, n)
	var wg sync.WaitGroup
	var mu sync.Mutex
	rejected := 0
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id, err := s.Submit(Request{
				Region:   regions[i%len(regions)],
				Tags:     testTags(uint16(i + 1)),
				Priority: i % 3,
			})
			if err != nil {
				var backlog ErrBacklog
				if !errors.As(err, &backlog) {
					t.Errorf("submit %d: %v", i, err)
					return
				}
				mu.Lock()
				rejected++
				mu.Unlock()
				return
			}
			ids[i] = id
		}(i)
	}
	wg.Wait()

	done := 0
	for _, id := range ids {
		if id == "" {
			continue
		}
		v := waitDone(t, s, id)
		if v.Status != StatusDone {
			t.Fatalf("mission %s finished %s (%s)", id, v.Status, v.Err)
		}
		done++
	}
	if done+rejected != n {
		t.Fatalf("accounted %d done + %d rejected, want %d", done, rejected, n)
	}
	if done < n/2 {
		t.Fatalf("only %d/%d missions completed", done, n)
	}
	snap := s.Metrics().Snapshot()
	if snap.Completed != int64(done) {
		t.Fatalf("metrics completed %d, want %d", snap.Completed, done)
	}
	if snap.QueueDepth != 0 {
		t.Fatalf("queue depth %d after drain-down, want 0", snap.QueueDepth)
	}
}

func TestCancelQueued(t *testing.T) {
	s, err := New(fastConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	id := submitOK(t, s, Request{Region: "dock", Tags: testTags(1)})
	if !s.Cancel(id) {
		t.Fatal("cancel of queued mission failed")
	}
	v, _ := s.Get(id)
	if v.Status != StatusCanceled {
		t.Fatalf("status %s, want canceled", v.Status)
	}
	if s.Cancel(id) {
		t.Fatal("cancel of terminal mission reported true")
	}
	// The worker must skip the canceled record without flying it.
	s.Start()
	defer s.Drain(context.Background())
	id2 := submitOK(t, s, Request{Region: "dock", Tags: testTags(2)})
	if v := waitDone(t, s, id2); v.Status != StatusDone {
		t.Fatalf("follow-up mission finished %s", v.Status)
	}
	if snap := s.Metrics().Snapshot(); snap.Batches != 1 {
		t.Fatalf("flew %d batches, want 1 (canceled mission must not fly)", snap.Batches)
	}
}

// TestDeadlineExpiresQueued: a request whose deadline passed while
// queued is expired by the dispatcher, not flown.
func TestDeadlineExpiresQueued(t *testing.T) {
	s, err := New(fastConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	id := submitOK(t, s, Request{
		Region:   "dock",
		Tags:     testTags(1),
		Deadline: time.Now().Add(-time.Millisecond),
	})
	s.Start()
	defer s.Drain(context.Background())
	v := waitDone(t, s, id)
	if v.Status != StatusExpired {
		t.Fatalf("status %s, want expired", v.Status)
	}
	if snap := s.Metrics().Snapshot(); snap.Expired != 1 {
		t.Fatalf("expired counter %d, want 1", snap.Expired)
	}
}

// TestDrain: admission stops, queued work cancels, in-flight work
// finishes, and the drained shard leaves a resumable checkpoint.
func TestDrain(t *testing.T) {
	cfg := fastConfig(1)
	cfg.TicksPerSortie = 30 // long enough to still be flying when we drain
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	inflight := submitOK(t, s, Request{Region: "corridor-east", Tags: testTags(1)})
	// Wait for it to leave the queue.
	deadline := time.Now().Add(30 * time.Second)
	for {
		v, _ := s.Get(inflight)
		if v.Status != StatusQueued {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("mission never started")
		}
		time.Sleep(time.Millisecond)
	}
	queued := submitOK(t, s, Request{Region: "dock", Tags: testTags(2)})

	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(Request{Region: "dock", Tags: testTags(3)}); !errors.As(err, &ErrDraining{}) {
		t.Fatalf("post-drain submit returned %v, want ErrDraining", err)
	}
	if v, _ := s.Get(inflight); v.Status != StatusDone {
		t.Fatalf("in-flight mission finished %s, want done (drain must let it land)", v.Status)
	}
	if v, _ := s.Get(queued); v.Status != StatusCanceled {
		t.Fatalf("queued mission finished %s, want canceled", v.Status)
	}
	ckpt := s.Lessor().Checkpoint(0)
	if ckpt == nil {
		t.Fatal("drained shard left no checkpoint")
	}
}

// TestStopCancelsInFlight: Stop (unlike Drain) cancels the sortie
// context; the engine rolls back and the member fails.
func TestStopCancelsInFlight(t *testing.T) {
	cfg := fastConfig(1)
	cfg.Sorties = 50
	cfg.TicksPerSortie = 50
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	id := submitOK(t, s, Request{Region: "corridor-east", Tags: testTags(1)})
	for {
		if v, _ := s.Get(id); v.Status == StatusRunning {
			break
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Stop(ctx); err != nil {
		t.Fatal(err)
	}
	v, _ := s.Get(id)
	if v.Status != StatusFailed {
		t.Fatalf("status after Stop = %s, want failed", v.Status)
	}
}

// TestCancelRunningBatchSolo: canceling the only member of a running
// batch cancels the sortie itself.
func TestCancelRunningBatchSolo(t *testing.T) {
	cfg := fastConfig(1)
	cfg.Sorties = 50
	cfg.TicksPerSortie = 50
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Drain(context.Background())
	id := submitOK(t, s, Request{Region: "dock", Tags: testTags(1)})
	for {
		if v, _ := s.Get(id); v.Status == StatusRunning {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if !s.Cancel(id) {
		t.Fatal("cancel of running mission failed")
	}
	v := waitDone(t, s, id)
	if v.Status != StatusCanceled {
		t.Fatalf("status %s, want canceled", v.Status)
	}
}
