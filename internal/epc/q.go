package epc

import "math"

// QAlgorithm implements the Gen2 Annex D.2 adaptive Q algorithm the reader
// uses to size inventory rounds: Q floats up on collisions and down on
// empty slots so that roughly one tag answers per slot.
type QAlgorithm struct {
	Qfp  float64 // floating-point Q
	C    float64 // adjustment step, typically 0.1 ≤ C ≤ 0.5
	MinQ int
	MaxQ int
}

// NewQAlgorithm returns the algorithm initialized at q0 with step c.
func NewQAlgorithm(q0 int, c float64) *QAlgorithm {
	if c <= 0 {
		c = 0.3
	}
	return &QAlgorithm{Qfp: float64(q0), C: c, MinQ: 0, MaxQ: 15}
}

// Q returns the current integer Q (rounded, clamped to [MinQ, MaxQ]).
func (q *QAlgorithm) Q() int {
	v := int(math.Round(q.Qfp))
	if v < q.MinQ {
		v = q.MinQ
	}
	if v > q.MaxQ {
		v = q.MaxQ
	}
	return v
}

// Slots returns the current round size 2^Q.
func (q *QAlgorithm) Slots() int { return 1 << q.Q() }

// OnEmpty records an empty slot (no reply): Q drifts down.
func (q *QAlgorithm) OnEmpty() {
	q.Qfp = math.Max(float64(q.MinQ), q.Qfp-q.C)
}

// OnSingle records a successful singleton reply: Q holds.
func (q *QAlgorithm) OnSingle() {}

// OnCollision records a collided slot: Q drifts up.
func (q *QAlgorithm) OnCollision() {
	q.Qfp = math.Min(float64(q.MaxQ), q.Qfp+q.C)
}
