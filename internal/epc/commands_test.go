package epc

import (
	"testing"
	"testing/quick"
)

func TestQueryBitsLayout(t *testing.T) {
	q := Query{DR: DR64, M: Miller4, TRext: true, Sel: 2, Session: S2, Target: TargetB, Q: 9}
	b := q.Bits()
	if len(b) != 22 {
		t.Fatalf("Query length = %d", len(b))
	}
	if !b.hasPrefix(1, 0, 0, 0) {
		t.Fatalf("Query prefix = %s", b[:4])
	}
	if !CheckCRC5(b) {
		t.Fatal("Query CRC-5 invalid")
	}
}

func TestQueryRoundTrip(t *testing.T) {
	f := func(dr, m, sel, sess, tgt, qv uint8, trext bool) bool {
		q := Query{
			DR:      DivideRatio(dr % 2),
			M:       Miller(m % 4),
			TRext:   trext,
			Sel:     sel % 4,
			Session: Session(sess % 4),
			Target:  Target(tgt % 2),
			Q:       qv % 16,
		}
		cmd, err := Decode(q.Bits())
		if err != nil {
			return false
		}
		got, ok := cmd.(Query)
		return ok && got == q
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQueryRepRoundTrip(t *testing.T) {
	for s := S0; s <= S3; s++ {
		cmd, err := Decode(QueryRep{Session: s}.Bits())
		if err != nil {
			t.Fatal(err)
		}
		if got := cmd.(QueryRep); got.Session != s {
			t.Fatalf("session = %v", got.Session)
		}
	}
}

func TestQueryAdjustRoundTrip(t *testing.T) {
	for _, ud := range []int{-1, 0, 1} {
		qa := QueryAdjust{Session: S1, UpDn: ud}
		cmd, err := Decode(qa.Bits())
		if err != nil {
			t.Fatal(err)
		}
		if got := cmd.(QueryAdjust); got != qa {
			t.Fatalf("round trip %+v != %+v", got, qa)
		}
	}
}

func TestACKRoundTrip(t *testing.T) {
	f := func(rn uint16) bool {
		cmd, err := Decode(ACK{RN16: rn}.Bits())
		if err != nil {
			return false
		}
		got, ok := cmd.(ACK)
		return ok && got.RN16 == rn
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNAKRoundTrip(t *testing.T) {
	cmd, err := Decode(NAK{}.Bits())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cmd.(NAK); !ok {
		t.Fatalf("decoded %T", cmd)
	}
}

func TestReqRNRoundTrip(t *testing.T) {
	cmd, err := Decode(ReqRN{RN16: 0xBEEF}.Bits())
	if err != nil {
		t.Fatal(err)
	}
	if got := cmd.(ReqRN); got.RN16 != 0xBEEF {
		t.Fatalf("RN16 = %04X", got.RN16)
	}
}

func TestReqRNCRCCorruption(t *testing.T) {
	b := ReqRN{RN16: 0x1234}.Bits()
	b[10] ^= 1
	if _, err := Decode(b); err == nil {
		t.Fatal("corrupted ReqRN decoded")
	}
}

func TestSelectRoundTrip(t *testing.T) {
	s := Select{
		Target: 4, Action: 2, MemBank: BankEPC, Pointer: 32,
		Mask:     Bits{1, 0, 1, 1, 0, 0, 1, 0},
		Truncate: true,
	}
	cmd, err := Decode(s.Bits())
	if err != nil {
		t.Fatal(err)
	}
	got := cmd.(Select)
	if got.Target != 4 || got.Action != 2 || got.MemBank != BankEPC ||
		got.Pointer != 32 || !got.Mask.Equal(s.Mask) || !got.Truncate {
		t.Fatalf("Select round trip: %+v", got)
	}
}

func TestSelectEmptyMask(t *testing.T) {
	s := Select{MemBank: BankTID}
	cmd, err := Decode(s.Bits())
	if err != nil {
		t.Fatal(err)
	}
	if got := cmd.(Select); len(got.Mask) != 0 {
		t.Fatalf("mask = %v", got.Mask)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(Bits{1, 1, 1}); err == nil {
		t.Fatal("garbage decoded")
	}
	// Query-length frame with broken CRC.
	q := Query{Q: 3}.Bits()
	q[20] ^= 1
	if _, err := Decode(q); err == nil {
		t.Fatal("bad-CRC Query decoded")
	}
}

func TestTagReplyRoundTrip(t *testing.T) {
	e := NewEPC96(0xE280, 0x1160, 0x6000, 0x0207, 0x1A2B, 0x3C4D)
	r := TagReply(e)
	if len(r) != 16+96+16 {
		t.Fatalf("reply length = %d", len(r))
	}
	got, err := ParseTagReply(r)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(e) {
		t.Fatalf("EPC round trip: %v != %v", got, e)
	}
}

func TestParseTagReplyCorruption(t *testing.T) {
	r := TagReply(NewEPC96(1, 2, 3, 4, 5, 6))
	r[40] ^= 1
	if _, err := ParseTagReply(r); err == nil {
		t.Fatal("corrupted reply parsed")
	}
	if _, err := ParseTagReply(Bits{1, 0}); err == nil {
		t.Fatal("short reply parsed")
	}
}

func TestDivideRatioValue(t *testing.T) {
	if DR8.Value() != 8 {
		t.Fatal("DR8")
	}
	if v := DR64.Value(); v < 21.3 || v > 21.4 {
		t.Fatalf("DR64 = %v", v)
	}
}

func TestMillerCycles(t *testing.T) {
	cases := map[Miller]int{FM0Mod: 1, Miller2: 2, Miller4: 4, Miller8: 8}
	for m, want := range cases {
		if got := m.CyclesPerSymbol(); got != want {
			t.Fatalf("M=%v cycles = %d", m, got)
		}
	}
}
