package epc

import (
	"fmt"
	"math"
)

// PIEConfig holds the pulse-interval-encoding timing parameters of the
// reader's downlink (Gen2 §6.3.1.2). The defaults model the paper's USRP
// reader: Tari 12.5 µs keeps the query spectrum within the 125 kHz the
// paper quotes for reader commands.
type PIEConfig struct {
	Tari   float64     // data-0 duration, seconds
	PWFrac float64     // low-pulse fraction of Tari (0.265..0.525)
	OneLen float64     // data-1 duration as a multiple of Tari (1.5..2.0)
	Delim  float64     // preamble delimiter duration, seconds (~12.5 µs)
	TRcal  float64     // TRcal duration, seconds; sets the BLF with DR
	DR     DivideRatio // divide ratio signalled in the Query
	Depth  float64     // ASK modulation depth, 0..1 (1 = full OOK)
}

// DefaultPIE returns the timing used throughout the reproduction:
// Tari 12.5 µs, data-1 = 2 Tari, TRcal tuned so BLF = 500 kHz at DR64/3
// — the backscatter link frequency the relay's 500 kHz band-pass filter
// is centered on (§6.1).
func DefaultPIE() PIEConfig {
	cfg := PIEConfig{
		Tari:   12.5e-6,
		PWFrac: 0.5,
		OneLen: 2.0,
		Delim:  12.5e-6,
		DR:     DR64,
		Depth:  0.9,
	}
	cfg.TRcal = cfg.DR.Value() / 500e3 // BLF = DR/TRcal = 500 kHz
	return cfg
}

// BLF returns the backscatter link frequency commanded by this timing.
func (c PIEConfig) BLF() float64 { return c.DR.Value() / c.TRcal }

// RTcal returns the reader-to-tag calibration interval: data-0 + data-1.
func (c PIEConfig) RTcal() float64 { return c.Tari + c.OneLen*c.Tari }

// Validate checks the configuration against Gen2 limits.
func (c PIEConfig) Validate() error {
	if c.Tari < 6.25e-6 || c.Tari > 25e-6 {
		return fmt.Errorf("epc: Tari %v out of range [6.25µs, 25µs]", c.Tari)
	}
	if c.PWFrac < 0.265 || c.PWFrac > 0.525 {
		return fmt.Errorf("epc: PW fraction %v out of range", c.PWFrac)
	}
	if c.OneLen < 1.5 || c.OneLen > 2.0 {
		return fmt.Errorf("epc: data-1 length %v Tari out of [1.5, 2]", c.OneLen)
	}
	if c.TRcal < 1.1*c.RTcal() || c.TRcal > 3*c.RTcal() {
		return fmt.Errorf("epc: TRcal %v out of [1.1, 3]×RTcal (%v)", c.TRcal, c.RTcal())
	}
	if c.Depth <= 0 || c.Depth > 1 {
		return fmt.Errorf("epc: modulation depth %v out of (0, 1]", c.Depth)
	}
	return nil
}

// symbol appends one PIE symbol (high for total−pw, then low for pw).
func appendSymbol(env []float64, total, pw float64, fs, lowLevel float64) []float64 {
	nTotal := int(math.Round(total * fs))
	nPW := int(math.Round(pw * fs))
	if nPW >= nTotal {
		nPW = nTotal - 1
	}
	for i := 0; i < nTotal-nPW; i++ {
		env = append(env, 1)
	}
	for i := 0; i < nPW; i++ {
		env = append(env, lowLevel)
	}
	return env
}

// EncodeEnvelope renders a command frame as an amplitude envelope at sample
// rate fs. withTRcal selects the full preamble (Query frames) versus the
// frame-sync (all other commands). The envelope starts with a stretch of
// carrier (1.0) so the tag has power before the delimiter, and ends with
// carrier restored (the reader transmits CW afterwards to power the tag
// during its reply).
func (c PIEConfig) EncodeEnvelope(frame Bits, withTRcal bool, fs float64) []float64 {
	low := 1 - c.Depth
	pw := c.PWFrac * c.Tari
	var env []float64
	// Leading CW so the tag charges and the decoder has an amplitude
	// reference.
	for i := 0; i < int(math.Round(8*c.Tari*fs)); i++ {
		env = append(env, 1)
	}
	// Delimiter: fixed low period.
	for i := 0; i < int(math.Round(c.Delim*fs)); i++ {
		env = append(env, low)
	}
	// data-0, RTcal, then TRcal for a preamble.
	env = appendSymbol(env, c.Tari, pw, fs, low)
	env = appendSymbol(env, c.RTcal(), pw, fs, low)
	if withTRcal {
		env = appendSymbol(env, c.TRcal, pw, fs, low)
	}
	for _, b := range frame {
		if b&1 == 1 {
			env = appendSymbol(env, c.OneLen*c.Tari, pw, fs, low)
		} else {
			env = appendSymbol(env, c.Tari, pw, fs, low)
		}
	}
	// Trailing CW: the T1 window plus enough carrier to illuminate the
	// longest tag reply (a PC+EPC+CRC frame at the slowest legal BLF).
	for i := 0; i < int(math.Round(40*c.Tari*fs)); i++ {
		env = append(env, 1)
	}
	return env
}

// DecodedFrame is the result of demodulating a PIE envelope.
type DecodedFrame struct {
	Bits     Bits
	HasTRcal bool
	RTcal    float64 // measured, seconds
	TRcal    float64 // measured, seconds (0 when absent)
}

// DecodeEnvelope demodulates a PIE amplitude envelope back into bits. It
// finds the delimiter, measures RTcal to derive the 0/1 pivot, detects an
// optional TRcal, and classifies each subsequent symbol by duration. This
// is the tag model's downlink receiver.
func DecodeEnvelope(env []float64, fs float64) (DecodedFrame, error) {
	var out DecodedFrame
	if len(env) == 0 {
		return out, fmt.Errorf("epc: empty envelope")
	}
	hi, lo := env[0], env[0]
	for _, v := range env {
		hi = math.Max(hi, v)
		lo = math.Min(lo, v)
	}
	// The tag slices on relative depth: the absolute level depends on the
	// link budget, but the modulation depth survives any linear channel.
	if hi <= 0 || (hi-lo)/hi < 0.05 {
		return out, fmt.Errorf("epc: envelope has no modulation (depth %.3f)", (hi-lo)/math.Max(hi, 1e-300))
	}
	thr := (hi + lo) / 2
	// Find low-pulse runs: (start, end) sample indices. Runs shorter than
	// a microsecond are filter ringing (the relay's low-pass smooths the
	// PIE edges), not PIE pulses — the narrowest legal PW is 3.3 µs.
	minRun := int(1e-6 * fs)
	if minRun < 1 {
		minRun = 1
	}
	type run struct{ start, end int }
	var runs []run
	inLow := false
	s := 0
	for i, v := range env {
		if v < thr && !inLow {
			inLow, s = true, i
		} else if v >= thr && inLow {
			inLow = false
			if i-s >= minRun {
				runs = append(runs, run{s, i})
			}
		}
	}
	if inLow && len(env)-s >= minRun {
		runs = append(runs, run{s, len(env)})
	}
	// The delimiter is the first low run preceded by a sustained carrier
	// (the reader transmits CW before every frame). Anything earlier —
	// receiver filter warm-up, junk before the carrier — is discarded.
	minCW := int(25e-6 * fs) // two Tari of carrier minimum
	delim := -1
	prevEnd := 0
	for i, r := range runs {
		if r.start-prevEnd >= minCW {
			delim = i
			break
		}
		prevEnd = r.end
	}
	if delim < 0 {
		return out, fmt.Errorf("epc: no delimiter found (%d low runs)", len(runs))
	}
	runs = runs[delim:]
	if len(runs) < 3 {
		return out, fmt.Errorf("epc: too few pulses (%d) for a frame", len(runs))
	}
	// Symbols end at each low-pulse end after the delimiter, so symbol
	// k's duration = pulseEnd[k+1] − pulseEnd[k].
	durs := make([]float64, 0, len(runs)-1)
	for i := 1; i < len(runs); i++ {
		durs = append(durs, float64(runs[i].end-runs[i-1].end)/fs)
	}
	// durs[0] = data-0 (Tari), durs[1] = RTcal, optional durs[2] = TRcal.
	if len(durs) < 2 {
		return out, fmt.Errorf("epc: missing calibration symbols")
	}
	out.RTcal = durs[1]
	pivot := out.RTcal / 2
	idx := 2
	if len(durs) > 2 && durs[2] > 1.1*out.RTcal && durs[2] <= 3.2*out.RTcal {
		out.HasTRcal = true
		out.TRcal = durs[2]
		idx = 3
	}
	for ; idx < len(durs); idx++ {
		d := durs[idx]
		if d > 2.5*out.RTcal {
			return out, fmt.Errorf("epc: symbol %d duration %v implausible", idx, d)
		}
		if d > pivot {
			out.Bits = append(out.Bits, 1)
		} else {
			out.Bits = append(out.Bits, 0)
		}
	}
	return out, nil
}
