package epc

// CRC5 computes the EPC Gen2 CRC-5 over the given bits: polynomial
// x⁵+x³+1 (0b101001) with preset 0b01001. It protects the Query command.
func CRC5(bits Bits) Bits {
	reg := byte(0x09) // preset 01001
	for _, b := range bits {
		fb := (reg>>4)&1 ^ (b & 1)
		reg = (reg << 1) & 0x1F
		if fb == 1 {
			reg ^= 0x09 // x^3 + 1 taps
		}
	}
	return BitsFromUint(uint64(reg), 5)
}

// CheckCRC5 reports whether bits (payload ++ 5-bit CRC) verifies.
func CheckCRC5(bits Bits) bool {
	if len(bits) < 5 {
		return false
	}
	want := bits[len(bits)-5:]
	got := CRC5(bits[:len(bits)-5])
	return got.Equal(want)
}

// CRC16 computes the EPC Gen2 / ISO 13239 CRC-16 over the given bits:
// polynomial x¹⁶+x¹²+x⁵+1 (0x1021), preset 0xFFFF, final complement.
// It protects ReqRN, Select, and tag replies carrying PC+EPC.
func CRC16(bits Bits) Bits {
	reg := uint16(0xFFFF)
	for _, b := range bits {
		fb := (reg>>15)&1 ^ uint16(b&1)
		reg <<= 1
		if fb == 1 {
			reg ^= 0x1021
		}
	}
	return BitsFromUint(uint64(^reg), 16)
}

// CheckCRC16 reports whether bits (payload ++ 16-bit CRC) verifies. Per the
// standard, running the CRC over payload++CRC of a valid frame leaves the
// register at the residue 0x1D0F.
func CheckCRC16(bits Bits) bool {
	if len(bits) < 16 {
		return false
	}
	reg := uint16(0xFFFF)
	for i, b := range bits {
		v := b & 1
		if i >= len(bits)-16 {
			v ^= 1 // transmitted CRC is complemented; undo
		}
		fb := (reg>>15)&1 ^ uint16(v)
		reg <<= 1
		if fb == 1 {
			reg ^= 0x1021
		}
	}
	return reg == 0
}
