package epc

import "fmt"

// Access-layer commands (Gen2 §6.3.2.12.3): once a tag is acknowledged and
// handled (ReqRN), the reader can read and write its memory banks. The
// warehouse workflows the paper motivates use these to pull item metadata
// (TID, user memory) once a tag has been localized.

// EBV encodes a value as an Extensible Bit Vector: 8-bit blocks, high bit
// set on every block except the last, 7 payload bits per block, big-endian.
func EBV(v uint32) Bits {
	// Collect 7-bit groups, most significant first.
	var groups []byte
	for {
		groups = append([]byte{byte(v & 0x7F)}, groups...)
		v >>= 7
		if v == 0 {
			break
		}
	}
	var b Bits
	for i, g := range groups {
		if i < len(groups)-1 {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
		b = b.Append(BitsFromUint(uint64(g), 7))
	}
	return b
}

// ParseEBV decodes an EBV starting at the beginning of b, returning the
// value and the number of bits consumed.
func ParseEBV(b Bits) (uint32, int, error) {
	var v uint32
	used := 0
	for {
		if len(b) < used+8 {
			return 0, 0, fmt.Errorf("epc: truncated EBV")
		}
		ext := b[used]
		group := uint32(uintOf(b[used+1 : used+8]))
		v = v<<7 | group
		used += 8
		if ext == 0 {
			return v, used, nil
		}
		if used > 32 {
			return 0, 0, fmt.Errorf("epc: EBV too long")
		}
	}
}

// Read (11000010₂) reads WordCount 16-bit words from a memory bank,
// starting at WordPtr. WordCount 0 means "read to the end of the bank".
type Read struct {
	MemBank   MemBank
	WordPtr   uint32
	WordCount uint8
	RN16      uint16 // the tag's current handle
}

// Bits serializes the Read with its CRC-16.
func (r Read) Bits() Bits {
	b := Bits{1, 1, 0, 0, 0, 0, 1, 0}
	b = b.Append(BitsFromUint(uint64(r.MemBank&3), 2))
	b = b.Append(EBV(r.WordPtr))
	b = b.Append(BitsFromUint(uint64(r.WordCount), 8))
	b = b.Append(BitsFromUint(uint64(r.RN16), 16))
	return b.Append(CRC16(b))
}

// Write (11000011₂) writes one cover-coded word: the data field is the
// plaintext word XOR the RN16 obtained from a fresh ReqRN, so the word
// never travels in the clear on the strong downlink.
type Write struct {
	MemBank MemBank
	WordPtr uint32
	// Data is the cover-coded word (plaintext ^ cover RN16).
	Data uint16
	RN16 uint16 // the tag's handle
}

// Bits serializes the Write with its CRC-16.
func (w Write) Bits() Bits {
	b := Bits{1, 1, 0, 0, 0, 0, 1, 1}
	b = b.Append(BitsFromUint(uint64(w.MemBank&3), 2))
	b = b.Append(EBV(w.WordPtr))
	b = b.Append(BitsFromUint(uint64(w.Data), 16))
	b = b.Append(BitsFromUint(uint64(w.RN16), 16))
	return b.Append(CRC16(b))
}

// decodeAccess parses Read/Write frames (called from Decode).
func decodeAccess(b Bits) (Command, error) {
	if len(b) < 8 {
		return nil, fmt.Errorf("epc: access frame too short")
	}
	if !CheckCRC16(b) {
		return nil, fmt.Errorf("epc: access command CRC-16 mismatch")
	}
	code := uintOf(b[:8])
	bank := MemBank(uintOf(b[8:10]))
	ptr, used, err := ParseEBV(b[10:])
	if err != nil {
		return nil, err
	}
	rest := b[10+used:]
	switch code {
	case 0b11000010: // Read
		if len(rest) != 8+16+16 {
			return nil, fmt.Errorf("epc: Read frame length %d invalid", len(b))
		}
		return Read{
			MemBank:   bank,
			WordPtr:   ptr,
			WordCount: uint8(uintOf(rest[:8])),
			RN16:      uint16(uintOf(rest[8:24])),
		}, nil
	case 0b11000011: // Write
		if len(rest) != 16+16+16 {
			return nil, fmt.Errorf("epc: Write frame length %d invalid", len(b))
		}
		return Write{
			MemBank: bank,
			WordPtr: ptr,
			Data:    uint16(uintOf(rest[:16])),
			RN16:    uint16(uintOf(rest[16:32])),
		}, nil
	}
	return nil, fmt.Errorf("epc: unknown access command %08b", code)
}

// ReadReply builds the tag's response to a Read: header 0, the words, the
// handle, and CRC-16.
func ReadReply(words []uint16, rn16 uint16) Bits {
	b := Bits{0}
	for _, w := range words {
		b = b.Append(BitsFromUint(uint64(w), 16))
	}
	b = b.Append(BitsFromUint(uint64(rn16), 16))
	return b.Append(CRC16(b))
}

// ParseReadReply validates a Read response and extracts the words.
func ParseReadReply(b Bits, wantWords int) ([]uint16, uint16, error) {
	want := 1 + wantWords*16 + 16 + 16
	if len(b) != want {
		return nil, 0, fmt.Errorf("epc: Read reply length %d, want %d", len(b), want)
	}
	if b[0] != 0 {
		return nil, 0, fmt.Errorf("epc: Read reply error header")
	}
	if !CheckCRC16(b) {
		return nil, 0, fmt.Errorf("epc: Read reply CRC-16 mismatch")
	}
	words := make([]uint16, wantWords)
	for i := range words {
		words[i] = uint16(uintOf(b[1+i*16 : 1+(i+1)*16]))
	}
	rn := uint16(uintOf(b[1+wantWords*16 : 1+wantWords*16+16]))
	return words, rn, nil
}

// WriteReply builds the tag's success response to a Write: header 0, the
// handle, and CRC-16 (delayed-reply form, simplified).
func WriteReply(rn16 uint16) Bits {
	b := Bits{0}
	b = b.Append(BitsFromUint(uint64(rn16), 16))
	return b.Append(CRC16(b))
}

// Kill (11000100₂) permanently silences a tag. The 32-bit kill password
// travels as two cover-coded halves in two consecutive Kill commands
// (§6.3.2.12.3.5, simplified to a half index + payload here).
type Kill struct {
	// Half selects which password half this command carries (0 = upper
	// 16 bits, 1 = lower).
	Half uint8
	// Password is the cover-coded half (plaintext ^ cover RN16).
	Password uint16
	RN16     uint16
}

// Bits serializes the Kill with its CRC-16.
func (k Kill) Bits() Bits {
	b := Bits{1, 1, 0, 0, 0, 1, 0, 0}
	b = append(b, k.Half&1)
	b = b.Append(BitsFromUint(uint64(k.Password), 16))
	b = b.Append(BitsFromUint(uint64(k.RN16), 16))
	return b.Append(CRC16(b))
}

// Lock (11000101₂) sets write-protection on a memory bank (payload
// simplified to a bank selector + lock bit).
type Lock struct {
	MemBank MemBank
	Locked  bool
	RN16    uint16
}

// Bits serializes the Lock with its CRC-16.
func (l Lock) Bits() Bits {
	b := Bits{1, 1, 0, 0, 0, 1, 0, 1}
	b = b.Append(BitsFromUint(uint64(l.MemBank&3), 2))
	if l.Locked {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = b.Append(BitsFromUint(uint64(l.RN16), 16))
	return b.Append(CRC16(b))
}

// decodeSecurity parses Kill/Lock frames.
func decodeSecurity(b Bits) (Command, error) {
	if !CheckCRC16(b) {
		return nil, fmt.Errorf("epc: security command CRC-16 mismatch")
	}
	switch uintOf(b[:8]) {
	case 0b11000100:
		if len(b) != 8+1+16+16+16 {
			return nil, fmt.Errorf("epc: Kill frame length %d", len(b))
		}
		return Kill{
			Half:     b[8],
			Password: uint16(uintOf(b[9:25])),
			RN16:     uint16(uintOf(b[25:41])),
		}, nil
	case 0b11000101:
		if len(b) != 8+2+1+16+16 {
			return nil, fmt.Errorf("epc: Lock frame length %d", len(b))
		}
		return Lock{
			MemBank: MemBank(uintOf(b[8:10])),
			Locked:  b[10] == 1,
			RN16:    uint16(uintOf(b[11:27])),
		}, nil
	}
	return nil, fmt.Errorf("epc: unknown security command")
}
