package epc

import (
	"math"
	"testing"
	"testing/quick"
)

const testFS = 4e6

func TestDefaultPIEValid(t *testing.T) {
	cfg := DefaultPIE()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if blf := cfg.BLF(); math.Abs(blf-500e3) > 1 {
		t.Fatalf("BLF = %v, want 500 kHz", blf)
	}
	if rt := cfg.RTcal(); math.Abs(rt-37.5e-6) > 1e-9 {
		t.Fatalf("RTcal = %v", rt)
	}
}

func TestPIEValidation(t *testing.T) {
	bad := DefaultPIE()
	bad.Tari = 1e-6
	if bad.Validate() == nil {
		t.Fatal("tiny Tari accepted")
	}
	bad = DefaultPIE()
	bad.OneLen = 3
	if bad.Validate() == nil {
		t.Fatal("long data-1 accepted")
	}
	bad = DefaultPIE()
	bad.TRcal = bad.RTcal() // must exceed 1.1×RTcal
	if bad.Validate() == nil {
		t.Fatal("short TRcal accepted")
	}
	bad = DefaultPIE()
	bad.Depth = 0
	if bad.Validate() == nil {
		t.Fatal("zero depth accepted")
	}
	bad = DefaultPIE()
	bad.PWFrac = 0.1
	if bad.Validate() == nil {
		t.Fatal("narrow PW accepted")
	}
}

func TestPIEQueryRoundTrip(t *testing.T) {
	cfg := DefaultPIE()
	frame := Query{DR: DR64, M: FM0Mod, Session: S0, Q: 4}.Bits()
	env := cfg.EncodeEnvelope(frame, true, testFS)
	dec, err := DecodeEnvelope(env, testFS)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.HasTRcal {
		t.Fatal("TRcal not detected on a Query preamble")
	}
	if !dec.Bits.Equal(frame) {
		t.Fatalf("bits: got %s want %s", dec.Bits, frame)
	}
	if math.Abs(dec.RTcal-cfg.RTcal()) > 1e-6 {
		t.Fatalf("measured RTcal = %v", dec.RTcal)
	}
	if math.Abs(dec.TRcal-cfg.TRcal) > 1e-6 {
		t.Fatalf("measured TRcal = %v", dec.TRcal)
	}
}

func TestPIEFrameSyncRoundTrip(t *testing.T) {
	cfg := DefaultPIE()
	frame := ACK{RN16: 0xA5C3}.Bits()
	env := cfg.EncodeEnvelope(frame, false, testFS)
	dec, err := DecodeEnvelope(env, testFS)
	if err != nil {
		t.Fatal(err)
	}
	if dec.HasTRcal {
		t.Fatal("phantom TRcal on frame-sync")
	}
	if !dec.Bits.Equal(frame) {
		t.Fatalf("bits: got %s want %s", dec.Bits, frame)
	}
}

func TestPIEArbitraryBitsProperty(t *testing.T) {
	cfg := DefaultPIE()
	f := func(v uint64, n uint8) bool {
		nb := int(n%30) + 4
		frame := BitsFromUint(v, nb)
		env := cfg.EncodeEnvelope(frame, false, testFS)
		dec, err := DecodeEnvelope(env, testFS)
		return err == nil && dec.Bits.Equal(frame)
	}
	cfgq := &quick.Config{MaxCount: 25}
	if err := quick.Check(f, cfgq); err != nil {
		t.Fatal(err)
	}
}

func TestPIEShallowDepth(t *testing.T) {
	// A 30% modulation depth (weak relay forwarding) must still decode.
	cfg := DefaultPIE()
	cfg.Depth = 0.3
	frame := QueryRep{Session: S1}.Bits()
	env := cfg.EncodeEnvelope(frame, false, testFS)
	dec, err := DecodeEnvelope(env, testFS)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Bits.Equal(frame) {
		t.Fatalf("bits = %s", dec.Bits)
	}
}

func TestDecodeEnvelopeErrors(t *testing.T) {
	if _, err := DecodeEnvelope(nil, testFS); err == nil {
		t.Fatal("empty envelope decoded")
	}
	flat := make([]float64, 1000)
	for i := range flat {
		flat[i] = 1
	}
	if _, err := DecodeEnvelope(flat, testFS); err == nil {
		t.Fatal("unmodulated envelope decoded")
	}
}

func TestEncodeEnvelopeLevels(t *testing.T) {
	cfg := DefaultPIE()
	env := cfg.EncodeEnvelope(Bits{1, 0}, false, testFS)
	for i, v := range env {
		if v != 1 && math.Abs(v-(1-cfg.Depth)) > 1e-12 {
			t.Fatalf("unexpected level %v at %d", v, i)
		}
	}
	// Leading CW present.
	if env[0] != 1 {
		t.Fatal("no leading carrier")
	}
}

func TestPIETariSweep(t *testing.T) {
	// Gen2 permits Tari from 6.25 to 25 µs; the codec must round-trip at
	// the extremes and mid values, with the BLF following the TRcal.
	for _, tari := range []float64{6.25e-6, 12.5e-6, 18e-6, 25e-6} {
		cfg := DefaultPIE()
		cfg.Tari = tari
		cfg.Delim = 12.5e-6
		// Keep TRcal legal relative to the new RTcal.
		cfg.TRcal = 1.5 * cfg.RTcal()
		if err := cfg.Validate(); err != nil {
			t.Fatalf("Tari %v: %v", tari, err)
		}
		frame := Query{DR: DR64, Q: 6}.Bits()
		env := cfg.EncodeEnvelope(frame, true, testFS)
		dec, err := DecodeEnvelope(env, testFS)
		if err != nil {
			t.Fatalf("Tari %v: %v", tari, err)
		}
		if !dec.Bits.Equal(frame) {
			t.Fatalf("Tari %v: bits %s", tari, dec.Bits)
		}
		if math.Abs(dec.TRcal-cfg.TRcal) > 2e-6 {
			t.Fatalf("Tari %v: measured TRcal %v", tari, dec.TRcal)
		}
	}
}

func TestPIEDR8(t *testing.T) {
	// DR8 with a long TRcal gives low BLFs (~40-160 kHz range tags use in
	// dense-reader mode).
	cfg := DefaultPIE()
	cfg.DR = DR8
	cfg.TRcal = 3 * cfg.RTcal()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	blf := cfg.BLF()
	if blf < 40e3 || blf > 200e3 {
		t.Fatalf("DR8 BLF = %v", blf)
	}
	frame := QueryRep{Session: S3}.Bits()
	env := cfg.EncodeEnvelope(frame, false, testFS)
	dec, err := DecodeEnvelope(env, testFS)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Bits.Equal(frame) {
		t.Fatalf("bits = %s", dec.Bits)
	}
}
