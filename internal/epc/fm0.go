package epc

import (
	"fmt"
	"math"
)

// FM0 and Miller backscatter encodings (Gen2 §6.3.1.3). A tag signals bits
// by switching its reflection coefficient between two states; this file
// works in the abstract ±1 chip domain. The tag model maps chips onto
// complex reflection coefficients, and the reader model demodulates the
// resulting waveform back to chips before calling the decoders here.

// FM0Preamble returns the FM0 start-of-reply chip pattern for the standard
// 6-symbol preamble "1010v1" (v = violation, no boundary inversion),
// starting from a high idle level. Each bit contributes two chips
// (half-symbols).
func FM0Preamble() []int8 {
	// Derived per Gen2 Figure 6.11: chips for 1 0 1 0 v 1. The "v" symbol
	// lacks the boundary inversion every legal FM0 symbol has, which makes
	// the preamble impossible to mistake for data.
	return []int8{
		+1, +1, // 1
		-1, +1, // 0
		-1, -1, // 1
		+1, -1, // 0
		-1, -1, // v: no boundary inversion (violation)
		+1, +1, // 1
	}
}

// FM0PreambleExt returns the extended (TRext = 1) start-of-reply pattern:
// a 12-zero pilot tone prepended to the standard preamble (Gen2 §6.3.1.3.2).
// Readers request it at low SNR — the pilot nearly triples the sync
// template's energy.
func FM0PreambleExt() []int8 {
	// Twelve data-0 symbols starting from a high idle level, each with a
	// boundary and a mid-symbol inversion, followed by the base preamble.
	pilot := make([]int8, 0, 24)
	state := int8(+1)
	for i := 0; i < 12; i++ {
		first := -state
		second := -first
		pilot = append(pilot, first, second)
		state = second
	}
	return append(pilot, FM0Preamble()...)
}

// FM0Encode converts data bits to ±1 chips (two per bit), continuing from
// the chip state at the end of the preamble, and appends the dummy-1
// terminator. FM0 inverts phase at every symbol boundary; data-0 adds a
// mid-symbol inversion.
func FM0Encode(bits Bits) []int8 {
	return fm0Encode(bits, FM0Preamble())
}

// FM0EncodeExt is FM0Encode with the TRext pilot preamble.
func FM0EncodeExt(bits Bits) []int8 {
	return fm0Encode(bits, FM0PreambleExt())
}

func fm0Encode(bits Bits, pre []int8) []int8 {
	chips := append([]int8(nil), pre...)
	state := chips[len(chips)-1]
	emit := func(b byte) {
		first := -state // boundary inversion
		var second int8
		if b&1 == 0 {
			second = -first // mid-symbol inversion
		} else {
			second = first
		}
		chips = append(chips, first, second)
		state = second
	}
	for _, b := range bits {
		emit(b)
	}
	emit(1) // dummy-1 terminator
	return chips
}

// FM0Decode recovers data bits from a chip sequence produced by FM0Encode
// (preamble + data + dummy 1). It verifies the preamble, then classifies
// each symbol by whether a mid-symbol inversion occurred. Chip values may
// be soft (any negative/positive magnitude); only the sign is used.
func FM0Decode(chips []float64) (Bits, error) {
	return fm0Decode(chips, FM0Preamble())
}

// FM0DecodeExt decodes a TRext (pilot-extended) reply.
func FM0DecodeExt(chips []float64) (Bits, error) {
	return fm0Decode(chips, FM0PreambleExt())
}

func fm0Decode(chips []float64, pre []int8) (Bits, error) {
	if len(chips) < len(pre)+2 {
		return nil, fmt.Errorf("epc: FM0 sequence too short (%d chips)", len(chips))
	}
	// The whole backscatter waveform may be inverted (unknown channel
	// sign); try both polarities against the preamble.
	score := func(sign float64) int {
		n := 0
		for i, p := range pre {
			if sign*chips[i]*float64(p) > 0 {
				n++
			}
		}
		return n
	}
	sign := 1.0
	if score(-1) > score(1) {
		sign = -1
	}
	// Allow a noise-proportional number of chip-sign mismatches: 1/6 of
	// the template, at least 2. Longer (TRext) templates tolerate more
	// absolute errors, which is exactly why readers request them at low
	// SNR.
	allow := len(pre) / 6
	if allow < 2 {
		allow = 2
	}
	if s := score(sign); s < len(pre)-allow {
		return nil, fmt.Errorf("epc: FM0 preamble not found (%d/%d chips match)", s, len(pre))
	}
	data := chips[len(pre):]
	if len(data)%2 != 0 {
		data = data[:len(data)-1]
	}
	nsym := len(data) / 2
	if nsym < 1 {
		return nil, fmt.Errorf("epc: no FM0 symbols after preamble")
	}
	bits := make(Bits, 0, nsym-1)
	for i := 0; i < nsym; i++ {
		first := sign * data[2*i]
		second := sign * data[2*i+1]
		if first*second < 0 {
			bits = append(bits, 0)
		} else {
			bits = append(bits, 1)
		}
	}
	// Strip the dummy-1 terminator.
	if bits[len(bits)-1] != 1 {
		return nil, fmt.Errorf("epc: FM0 dummy-1 terminator missing")
	}
	return bits[:len(bits)-1], nil
}

// MillerEncode converts data bits to ±1 chips using Miller-modulated
// subcarrier with m cycles per symbol (m ∈ {2,4,8}). Each bit produces
// 2·m chips. A 4-symbol preamble of zeros plus "010111" start pattern is
// prepended per the standard's TRext=0 sequence (simplified: 4 zeros + the
// pattern is folded into the baseband state machine).
func MillerEncode(bits Bits, m Miller) ([]int8, error) {
	cyc := m.CyclesPerSymbol()
	if cyc != 2 && cyc != 4 && cyc != 8 {
		return nil, fmt.Errorf("epc: Miller encode requires M ∈ {2,4,8}, got %v", m)
	}
	// Baseband Miller: data-1 inverts mid-symbol; data-0 holds, except a 0
	// following a 0 inverts at the boundary.
	full := append(Bits{0, 0, 0, 0, 0, 1, 0, 1, 1, 1}, bits...) // pilot + start
	level := int8(1)
	var base []int8 // two half-symbol levels per bit
	prev := byte(1)
	for _, b := range full {
		if b&1 == 0 && prev == 0 {
			level = -level // boundary inversion between consecutive zeros
		}
		first := level
		second := level
		if b&1 == 1 {
			second = -level
		}
		base = append(base, first, second)
		level = second
		prev = b & 1
	}
	// Multiply by square subcarrier: each half-symbol carries m cycles →
	// m half-cycles of +,− alternation... each full symbol has m cycles =
	// 2m chips; each half-symbol has m chips alternating.
	chips := make([]int8, 0, len(base)*cyc)
	for _, lv := range base {
		s := int8(1)
		for k := 0; k < cyc; k++ {
			chips = append(chips, lv*s)
			s = -s
		}
	}
	return chips, nil
}

// MillerDecode recovers data bits from Miller chips produced by
// MillerEncode with the same m. Soft chips are accepted.
func MillerDecode(chips []float64, m Miller) (Bits, error) {
	cyc := m.CyclesPerSymbol()
	if cyc != 2 && cyc != 4 && cyc != 8 {
		return nil, fmt.Errorf("epc: Miller decode requires M ∈ {2,4,8}, got %v", m)
	}
	per := 2 * cyc // chips per half-symbol pair = 2 halves × cyc
	if len(chips)%per != 0 {
		chips = chips[:len(chips)/per*per]
	}
	nsym := len(chips) / per
	const overhead = 10 // pilot + start pattern symbols
	if nsym <= overhead {
		return nil, fmt.Errorf("epc: Miller sequence too short (%d symbols)", nsym)
	}
	// Demodulate the subcarrier: correlate each half-symbol with the
	// alternating pattern to recover the baseband level.
	half := make([]float64, 0, nsym*2)
	for h := 0; h < nsym*2; h++ {
		var acc float64
		s := 1.0
		for k := 0; k < cyc; k++ {
			acc += chips[h*cyc+k] * s
			s = -s
		}
		half = append(half, acc)
	}
	// Overall waveform sign is irrelevant: data-1 is detected by a
	// mid-symbol sign flip, which survives inversion.
	bits := make(Bits, 0, nsym-overhead)
	for i := overhead; i < nsym; i++ {
		a, b := half[2*i], half[2*i+1]
		if a*b < 0 {
			bits = append(bits, 1) // mid-symbol inversion = data-1
		} else {
			bits = append(bits, 0)
		}
	}
	return bits, nil
}

// ChipsToFloat converts hard chips to soft values for the decoders.
func ChipsToFloat(chips []int8) []float64 {
	out := make([]float64, len(chips))
	for i, c := range chips {
		out[i] = float64(c)
	}
	return out
}

// ChipRate returns the chip rate (chips/second) for an encoding at the
// given backscatter link frequency: FM0 sends 2 chips per bit at BLF bits/s;
// Miller-M sends 2·M chips per bit at BLF/M bits/s, i.e. 2·BLF chips/s for
// every encoding.
func ChipRate(blf float64) float64 { return 2 * blf }

// BitDuration returns the duration of one data bit for encoding m at the
// given BLF: FM0 bits last 1/BLF; Miller-M bits last M/BLF.
func BitDuration(m Miller, blf float64) float64 {
	return float64(m.CyclesPerSymbol()) / blf
}

// SamplesPerChip returns how many waveform samples represent one chip at
// sample rate fs and link frequency blf, guaranteeing at least 1.
func SamplesPerChip(fs, blf float64) int {
	n := int(math.Round(fs / ChipRate(blf)))
	if n < 1 {
		n = 1
	}
	return n
}
