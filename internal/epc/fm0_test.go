package epc

import (
	"strings"
	"testing"
	"testing/quick"

	"rfly/internal/rng"
)

func TestFM0PreambleShape(t *testing.T) {
	pre := FM0Preamble()
	if len(pre) != 12 {
		t.Fatalf("preamble chips = %d", len(pre))
	}
	// The violation: symbol 5 must NOT invert at its boundary.
	if pre[8] != pre[7] {
		t.Fatal("violation symbol inverts at boundary; preamble is not a violation")
	}
	// All other boundaries invert.
	for _, b := range []int{2, 4, 6, 10} {
		if pre[b] == pre[b-1] {
			t.Fatalf("legal symbol at chip %d lacks boundary inversion", b)
		}
	}
}

func TestFM0EncodeStructure(t *testing.T) {
	bits := Bits{1, 0, 1}
	chips := FM0Encode(bits)
	// preamble(12) + 3 data symbols + dummy-1, 2 chips each.
	if len(chips) != 12+8 {
		t.Fatalf("chips = %d", len(chips))
	}
	// Every data symbol must invert at its boundary.
	for i := 12; i < len(chips); i += 2 {
		if chips[i] == chips[i-1] {
			t.Fatalf("missing boundary inversion at chip %d", i)
		}
	}
}

func TestFM0RoundTrip(t *testing.T) {
	f := func(v uint64, n uint8) bool {
		nb := int(n%32) + 1
		bits := BitsFromUint(v, nb)
		chips := FM0Encode(bits)
		got, err := FM0Decode(ChipsToFloat(chips))
		return err == nil && got.Equal(bits)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFM0InvertedChannel(t *testing.T) {
	bits := Bits{1, 1, 0, 0, 1, 0}
	chips := ChipsToFloat(FM0Encode(bits))
	for i := range chips {
		chips[i] = -chips[i]
	}
	got, err := FM0Decode(chips)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(bits) {
		t.Fatalf("inverted decode = %s", got)
	}
}

func TestFM0NoisyChips(t *testing.T) {
	src := rng.New(33)
	bits := BitsFromUint(0xACE1, 16)
	chips := ChipsToFloat(FM0Encode(bits))
	for i := range chips {
		chips[i] += src.Gaussian(0, 0.3)
	}
	got, err := FM0Decode(chips)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(bits) {
		t.Fatalf("noisy decode = %s, want %s", got, bits)
	}
}

func TestFM0DecodeErrors(t *testing.T) {
	if _, err := FM0Decode(nil); err == nil {
		t.Fatal("empty decoded")
	}
	// Random chips shouldn't look like a preamble.
	junk := make([]float64, 40)
	for i := range junk {
		if i%3 == 0 {
			junk[i] = 1
		} else {
			junk[i] = -1
		}
	}
	if _, err := FM0Decode(junk); err == nil {
		t.Fatal("junk decoded")
	}
}

func TestMillerRoundTrip(t *testing.T) {
	for _, m := range []Miller{Miller2, Miller4, Miller8} {
		bits := BitsFromUint(0xBEEF, 16)
		chips, err := MillerEncode(bits, m)
		if err != nil {
			t.Fatal(err)
		}
		wantLen := (16 + 10) * 2 * m.CyclesPerSymbol()
		if len(chips) != wantLen {
			t.Fatalf("M=%v chips = %d, want %d", m, len(chips), wantLen)
		}
		got, err := MillerDecode(ChipsToFloat(chips), m)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(bits) {
			t.Fatalf("M=%v decode = %s", m, got)
		}
	}
}

func TestMillerRejectsFM0(t *testing.T) {
	if _, err := MillerEncode(Bits{1}, FM0Mod); err == nil {
		t.Fatal("MillerEncode accepted FM0")
	}
	if _, err := MillerDecode(make([]float64, 100), FM0Mod); err == nil {
		t.Fatal("MillerDecode accepted FM0")
	}
}

func TestMillerNoisy(t *testing.T) {
	src := rng.New(44)
	bits := BitsFromUint(0x5A5A, 16)
	chips, err := MillerEncode(bits, Miller4)
	if err != nil {
		t.Fatal(err)
	}
	soft := ChipsToFloat(chips)
	for i := range soft {
		soft[i] += src.Gaussian(0, 0.5)
	}
	got, err := MillerDecode(soft, Miller4)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(bits) {
		t.Fatalf("noisy Miller decode = %s", got)
	}
}

func TestMillerTooShort(t *testing.T) {
	if _, err := MillerDecode(make([]float64, 8), Miller2); err == nil {
		t.Fatal("short Miller decoded")
	}
}

func TestChipRateAndDurations(t *testing.T) {
	if ChipRate(500e3) != 1e6 {
		t.Fatalf("ChipRate = %v", ChipRate(500e3))
	}
	if BitDuration(FM0Mod, 500e3) != 2e-6 {
		t.Fatalf("FM0 bit = %v", BitDuration(FM0Mod, 500e3))
	}
	if BitDuration(Miller4, 500e3) != 8e-6 {
		t.Fatalf("Miller4 bit = %v", BitDuration(Miller4, 500e3))
	}
	if SamplesPerChip(4e6, 500e3) != 4 {
		t.Fatalf("SamplesPerChip = %d", SamplesPerChip(4e6, 500e3))
	}
	if SamplesPerChip(1e3, 500e3) != 1 {
		t.Fatal("SamplesPerChip must floor at 1")
	}
}

func TestQAlgorithm(t *testing.T) {
	q := NewQAlgorithm(4, 0.5)
	if q.Q() != 4 || q.Slots() != 16 {
		t.Fatalf("initial Q = %d", q.Q())
	}
	for i := 0; i < 4; i++ {
		q.OnCollision()
	}
	if q.Q() != 6 {
		t.Fatalf("after 4 collisions Q = %d", q.Q())
	}
	for i := 0; i < 20; i++ {
		q.OnEmpty()
	}
	if q.Q() != 0 {
		t.Fatalf("after many empties Q = %d", q.Q())
	}
	q.OnEmpty() // clamps at MinQ
	if q.Qfp < 0 {
		t.Fatal("Qfp went negative")
	}
	before := q.Q()
	q.OnSingle()
	if q.Q() != before {
		t.Fatal("OnSingle changed Q")
	}
	// Clamp at MaxQ.
	for i := 0; i < 100; i++ {
		q.OnCollision()
	}
	if q.Q() != 15 {
		t.Fatalf("Q exceeded max: %d", q.Q())
	}
	// Zero step coerced to a sane default.
	if q2 := NewQAlgorithm(2, 0); q2.C != 0.3 {
		t.Fatalf("default C = %v", q2.C)
	}
}

func TestFM0ExtPilotShape(t *testing.T) {
	pre := FM0PreambleExt()
	if len(pre) != 24+12 {
		t.Fatalf("extended preamble chips = %d", len(pre))
	}
	// The pilot is 12 data-0 symbols: every symbol has a mid-symbol
	// inversion.
	for i := 0; i < 24; i += 2 {
		if pre[i] == pre[i+1] {
			t.Fatalf("pilot symbol %d lacks mid inversion", i/2)
		}
	}
	// The tail is the standard preamble.
	base := FM0Preamble()
	for i, c := range base {
		if pre[24+i] != c {
			t.Fatalf("base preamble not preserved at %d", i)
		}
	}
}

func TestFM0ExtRoundTrip(t *testing.T) {
	f := func(v uint64, n uint8) bool {
		nb := int(n%32) + 1
		bits := BitsFromUint(v, nb)
		chips := FM0EncodeExt(bits)
		got, err := FM0DecodeExt(ChipsToFloat(chips))
		return err == nil && got.Equal(bits)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFM0ExtLowSNRSyncBeatsBase(t *testing.T) {
	// The pilot's purpose is SYNC robustness: at an SNR where the 12-chip
	// preamble's sign vote starts failing, the 36-chip extended template
	// (with its proportional mismatch allowance) keeps detecting. Compare
	// preamble-detection failures specifically — data errors affect both
	// equally and are not the pilot's job.
	src := rng.New(77)
	bits := BitsFromUint(0x3C5A, 16)
	baseSyncFail, extSyncFail := 0, 0
	const trials = 150
	const sigma = 0.8
	syncFailed := func(err error) bool {
		return err != nil && strings.Contains(err.Error(), "preamble not found")
	}
	for i := 0; i < trials; i++ {
		b := ChipsToFloat(FM0Encode(bits))
		for j := range b {
			b[j] += src.Gaussian(0, sigma)
		}
		if _, err := FM0Decode(b); syncFailed(err) {
			baseSyncFail++
		}
		e := ChipsToFloat(FM0EncodeExt(bits))
		for j := range e {
			e[j] += src.Gaussian(0, sigma)
		}
		if _, err := FM0DecodeExt(e); syncFailed(err) {
			extSyncFail++
		}
	}
	if baseSyncFail == 0 {
		t.Skip("noise too benign to stress the base preamble")
	}
	if extSyncFail >= baseSyncFail {
		t.Fatalf("extended preamble sync failures %d ≥ base %d", extSyncFail, baseSyncFail)
	}
}
