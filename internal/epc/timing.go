package epc

import "time"

// Gen2 link timing (§6.3.1.6): the T1–T4 intervals plus command/reply
// airtimes determine how fast an inventory round runs — the quantity
// behind the paper's month→day cycle-counting motivation.

// Timing derives the protocol's time budget from the PIE configuration.
type Timing struct {
	cfg PIEConfig
}

// NewTiming wraps a PIE configuration.
func NewTiming(cfg PIEConfig) Timing { return Timing{cfg: cfg} }

// T1 is the reader-command to tag-response turnaround: max(RTcal, 10/BLF).
func (t Timing) T1() time.Duration {
	rt := t.cfg.RTcal()
	alt := 10 / t.cfg.BLF()
	if alt > rt {
		rt = alt
	}
	return seconds(rt)
}

// T2 is the tag-response to next-reader-command gap (3/BLF minimum;
// readers typically use ~8/BLF).
func (t Timing) T2() time.Duration { return seconds(8 / t.cfg.BLF()) }

// T4 is the minimum gap between reader commands (2·RTcal).
func (t Timing) T4() time.Duration { return seconds(2 * t.cfg.RTcal()) }

// CommandAirtime returns how long a command frame occupies the channel:
// preamble/frame-sync plus the PIE symbols.
func (t Timing) CommandAirtime(frame Bits, withTRcal bool) time.Duration {
	pie := t.cfg
	dur := pie.Delim + pie.Tari + pie.RTcal()
	if withTRcal {
		dur += pie.TRcal
	}
	for _, b := range frame {
		if b&1 == 1 {
			dur += pie.OneLen * pie.Tari
		} else {
			dur += pie.Tari
		}
	}
	return seconds(dur)
}

// ReplyAirtime returns a tag reply's duration: (preamble + bits + dummy)
// at the backscatter link frequency, honoring TRext and the Miller mode.
func (t Timing) ReplyAirtime(nBits int, m Miller, trext bool) time.Duration {
	pre := 6 // FM0 preamble symbols
	if m != FM0Mod {
		pre = 10
	}
	if trext {
		pre += 12
	}
	symbols := float64(pre + nBits + 1)
	return seconds(symbols * BitDuration(m, t.cfg.BLF()))
}

// SlotDuration estimates one slot's cost by outcome.
type SlotOutcome int

// Slot outcomes for timing purposes.
const (
	SlotEmpty SlotOutcome = iota
	SlotSingle
	SlotCollision
)

// SlotDuration returns the airtime one slot consumes: the QueryRep, plus
// (for responding slots) T1 + RN16 + T2, plus (for successful singles)
// the ACK exchange with the EPC reply.
func (t Timing) SlotDuration(outcome SlotOutcome, epcBits int) time.Duration {
	qrep := t.CommandAirtime(QueryRep{}.Bits(), false)
	switch outcome {
	case SlotEmpty:
		// The reader times out after T1 plus a small sense window.
		return qrep + t.T1() + t.T2()
	case SlotCollision:
		return qrep + t.T1() + t.ReplyAirtime(16, FM0Mod, false) + t.T2()
	default:
		ack := t.CommandAirtime(ACK{}.Bits(), false)
		return qrep + t.T1() + t.ReplyAirtime(16, FM0Mod, false) + t.T2() +
			ack + t.T1() + t.ReplyAirtime(epcBits, FM0Mod, false) + t.T2()
	}
}

// RoundDuration estimates a full inventory round's airtime from its slot
// statistics (Query itself included).
func (t Timing) RoundDuration(slots, empty, collisions, singles, epcBits int) time.Duration {
	d := t.CommandAirtime(Query{}.Bits(), true) + t.T1()
	d += time.Duration(empty) * t.SlotDuration(SlotEmpty, epcBits)
	d += time.Duration(collisions) * t.SlotDuration(SlotCollision, epcBits)
	d += time.Duration(singles) * t.SlotDuration(SlotSingle, epcBits)
	_ = slots
	return d
}

func seconds(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}
