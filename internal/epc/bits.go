// Package epc implements the EPC UHF Gen2 air-interface pieces RFly relies
// on: CRC-5 and CRC-16, the reader command set (Query, QueryRep,
// QueryAdjust, ACK, NAK, ReqRN, Select), PIE downlink symbol encoding, the
// tag's FM0 and Miller backscatter encodings, and the Q anti-collision
// algorithm.
//
// The relay is transparent to all of this (§3), but the reproduction still
// implements the protocol at the bit level: the reader synthesizes real PIE
// waveforms, tags answer with real FM0 waveforms, and decode success is a
// genuine demodulation outcome rather than an assumption.
package epc

import (
	"fmt"
	"strings"
)

// Bits is a sequence of bits, one per byte, each 0 or 1, MSB-first in the
// order transmitted over the air.
type Bits []byte

// BitsFromUint returns the low n bits of v as Bits, MSB first.
func BitsFromUint(v uint64, n int) Bits {
	b := make(Bits, n)
	for i := 0; i < n; i++ {
		b[i] = byte(v >> (n - 1 - i) & 1)
	}
	return b
}

// Uint interprets the bits MSB-first as an unsigned integer. Bit strings
// longer than 64 bits have no uint64 representation and return an error:
// over-the-air frames are attacker-controlled input, so an oversized
// field must surface as a decode failure, never a panic.
func (b Bits) Uint() (uint64, error) {
	if len(b) > 64 {
		return 0, fmt.Errorf("epc: Bits.Uint on %d bits (max 64)", len(b))
	}
	var v uint64
	for _, bit := range b {
		v = v<<1 | uint64(bit&1)
	}
	return v, nil
}

// uintOf is Uint for call sites whose slice width is bounded ≤ 64 bits by
// construction (fixed-width protocol fields); the error path is
// unreachable there.
func uintOf(b Bits) uint64 {
	v, _ := b.Uint()
	return v
}

// Append returns b with more appended (convenience for frame building).
func (b Bits) Append(more ...Bits) Bits {
	out := b
	for _, m := range more {
		out = append(out, m...)
	}
	return out
}

// Equal reports whether two bit strings are identical.
func (b Bits) Equal(o Bits) bool {
	if len(b) != len(o) {
		return false
	}
	for i := range b {
		if b[i]&1 != o[i]&1 {
			return false
		}
	}
	return true
}

// String renders the bits as a compact 0/1 string.
func (b Bits) String() string {
	var sb strings.Builder
	for _, bit := range b {
		if bit&1 == 1 {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// ParseBits parses a string of '0'/'1' characters (spaces allowed).
func ParseBits(s string) (Bits, error) {
	var b Bits
	for _, c := range s {
		switch c {
		case '0':
			b = append(b, 0)
		case '1':
			b = append(b, 1)
		case ' ', '_':
		default:
			return nil, fmt.Errorf("epc: invalid bit character %q", c)
		}
	}
	return b, nil
}

// EPC is a tag's Electronic Product Code. The paper's Alien Squiggle tags
// carry 96-bit EPCs; this type supports any multiple of 16 bits up to 496
// as the protocol allows.
type EPC struct {
	Words []uint16
}

// NewEPC96 builds a 96-bit EPC from six 16-bit words.
func NewEPC96(w0, w1, w2, w3, w4, w5 uint16) EPC {
	return EPC{Words: []uint16{w0, w1, w2, w3, w4, w5}}
}

// Bits serializes the EPC MSB-first.
func (e EPC) Bits() Bits {
	var b Bits
	for _, w := range e.Words {
		b = b.Append(BitsFromUint(uint64(w), 16))
	}
	return b
}

// EPCFromBits parses an EPC from a bit string (must be a multiple of 16).
func EPCFromBits(b Bits) (EPC, error) {
	if len(b)%16 != 0 {
		return EPC{}, fmt.Errorf("epc: EPC length %d not a multiple of 16", len(b))
	}
	e := EPC{Words: make([]uint16, len(b)/16)}
	for i := range e.Words {
		e.Words[i] = uint16(uintOf(b[i*16 : (i+1)*16]))
	}
	return e, nil
}

// String renders the EPC as hex words.
func (e EPC) String() string {
	parts := make([]string, len(e.Words))
	for i, w := range e.Words {
		parts[i] = fmt.Sprintf("%04X", w)
	}
	return strings.Join(parts, "-")
}

// Equal reports whether two EPCs are identical.
func (e EPC) Equal(o EPC) bool {
	if len(e.Words) != len(o.Words) {
		return false
	}
	for i := range e.Words {
		if e.Words[i] != o.Words[i] {
			return false
		}
	}
	return true
}
