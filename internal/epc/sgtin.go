package epc

import "fmt"

// SGTIN-96 is the dominant real-world EPC scheme (GS1 Tag Data Standard):
// a serialized GTIN identifying company, product, and item serial. The
// paper's deployment story (§3) assumes a database mapping EPCs to
// objects; with SGTIN the mapping is structural — the EPC itself names
// the product.
type SGTIN96 struct {
	// Filter is the 3-bit filter value (0 = all, 1 = POS item, ...).
	Filter uint8
	// Partition selects the company-prefix/item-reference split (0–6).
	Partition uint8
	// CompanyPrefix is the GS1 company prefix (width set by Partition).
	CompanyPrefix uint64
	// ItemReference identifies the product (width set by Partition).
	ItemReference uint64
	// Serial is the 38-bit item serial number.
	Serial uint64
}

// sgtinHeader is the 8-bit EPC header value for SGTIN-96.
const sgtinHeader = 0x30

// sgtinPartitions maps Partition → (company bits, item bits).
var sgtinPartitions = [7][2]uint{
	{40, 4}, {37, 7}, {34, 10}, {30, 14}, {27, 17}, {24, 20}, {20, 24},
}

// Validate checks field widths against the partition.
func (s SGTIN96) Validate() error {
	if s.Filter > 7 {
		return fmt.Errorf("epc: SGTIN filter %d out of range", s.Filter)
	}
	if int(s.Partition) >= len(sgtinPartitions) {
		return fmt.Errorf("epc: SGTIN partition %d out of range", s.Partition)
	}
	p := sgtinPartitions[s.Partition]
	if s.CompanyPrefix >= 1<<p[0] {
		return fmt.Errorf("epc: company prefix %d exceeds %d bits", s.CompanyPrefix, p[0])
	}
	if s.ItemReference >= 1<<p[1] {
		return fmt.Errorf("epc: item reference %d exceeds %d bits", s.ItemReference, p[1])
	}
	if s.Serial >= 1<<38 {
		return fmt.Errorf("epc: serial %d exceeds 38 bits", s.Serial)
	}
	return nil
}

// Encode packs the SGTIN-96 into a 96-bit EPC.
func (s SGTIN96) Encode() (EPC, error) {
	if err := s.Validate(); err != nil {
		return EPC{}, err
	}
	p := sgtinPartitions[s.Partition]
	bits := BitsFromUint(uint64(sgtinHeader), 8)
	bits = bits.Append(BitsFromUint(uint64(s.Filter), 3))
	bits = bits.Append(BitsFromUint(uint64(s.Partition), 3))
	bits = bits.Append(BitsFromUint(s.CompanyPrefix, int(p[0])))
	bits = bits.Append(BitsFromUint(s.ItemReference, int(p[1])))
	bits = bits.Append(BitsFromUint(s.Serial, 38))
	if len(bits) != 96 {
		return EPC{}, fmt.Errorf("epc: SGTIN packing error (%d bits)", len(bits))
	}
	return EPCFromBits(bits)
}

// ParseSGTIN96 unpacks a 96-bit EPC carrying the SGTIN-96 header.
func ParseSGTIN96(e EPC) (SGTIN96, error) {
	bits := e.Bits()
	if len(bits) != 96 {
		return SGTIN96{}, fmt.Errorf("epc: SGTIN requires 96 bits, have %d", len(bits))
	}
	if uintOf(bits[:8]) != sgtinHeader {
		return SGTIN96{}, fmt.Errorf("epc: header %02X is not SGTIN-96", uintOf(bits[:8]))
	}
	s := SGTIN96{
		Filter:    uint8(uintOf(bits[8:11])),
		Partition: uint8(uintOf(bits[11:14])),
	}
	if int(s.Partition) >= len(sgtinPartitions) {
		return SGTIN96{}, fmt.Errorf("epc: SGTIN partition %d invalid", s.Partition)
	}
	p := sgtinPartitions[s.Partition]
	off := 14
	s.CompanyPrefix = uintOf(bits[off : off+int(p[0])])
	off += int(p[0])
	s.ItemReference = uintOf(bits[off : off+int(p[1])])
	off += int(p[1])
	s.Serial = uintOf(bits[off : off+38])
	return s, nil
}

// String renders the SGTIN in GS1 pure-identity style.
func (s SGTIN96) String() string {
	return fmt.Sprintf("urn:epc:id:sgtin:%d.%d.%d", s.CompanyPrefix, s.ItemReference, s.Serial)
}
