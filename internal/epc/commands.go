package epc

import "fmt"

// Session identifies one of the four Gen2 inventory sessions S0–S3.
type Session uint8

// Gen2 sessions.
const (
	S0 Session = iota
	S1
	S2
	S3
)

// DivideRatio is the Query DR bit selecting TRcal divide ratio.
type DivideRatio uint8

// Divide ratios: DR8 = 8, DR64 = 64/3.
const (
	DR8 DivideRatio = iota
	DR64
)

// Value returns the numeric divide ratio.
func (d DivideRatio) Value() float64 {
	if d == DR64 {
		return 64.0 / 3.0
	}
	return 8.0
}

// Miller is the tag backscatter modulation selected by a Query's M field.
type Miller uint8

// Backscatter encodings: FM0 baseband or Miller with 2/4/8 subcarrier
// cycles per symbol.
const (
	FM0Mod Miller = iota
	Miller2
	Miller4
	Miller8
)

// CyclesPerSymbol returns subcarrier cycles per symbol (1 for FM0, meaning
// one symbol period per bit with no subcarrier).
func (m Miller) CyclesPerSymbol() int {
	switch m {
	case Miller2:
		return 2
	case Miller4:
		return 4
	case Miller8:
		return 8
	default:
		return 1
	}
}

// String names the encoding ("FM0", "Miller-2", ...).
func (m Miller) String() string {
	switch m {
	case Miller2:
		return "Miller-2"
	case Miller4:
		return "Miller-4"
	case Miller8:
		return "Miller-8"
	default:
		return "FM0"
	}
}

// Target selects which inventoried-flag population a Query addresses.
type Target uint8

// Query targets.
const (
	TargetA Target = iota
	TargetB
)

// Query is the Gen2 Query command (command code 1000₂): it starts an
// inventory round with 2^Q slots and carries the link-timing parameters.
type Query struct {
	DR      DivideRatio
	M       Miller
	TRext   bool // request extended tag preamble
	Sel     uint8
	Session Session
	Target  Target
	Q       uint8 // 0..15
}

// Bits serializes the Query with its CRC-5 (22 bits total).
func (q Query) Bits() Bits {
	b := Bits{1, 0, 0, 0}
	b = append(b, byte(q.DR&1))
	b = b.Append(BitsFromUint(uint64(q.M&3), 2))
	if q.TRext {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = b.Append(BitsFromUint(uint64(q.Sel&3), 2))
	b = b.Append(BitsFromUint(uint64(q.Session&3), 2))
	b = append(b, byte(q.Target&1))
	b = b.Append(BitsFromUint(uint64(q.Q&0xF), 4))
	return b.Append(CRC5(b))
}

// QueryRep (00₂) advances to the next slot of the current round.
type QueryRep struct {
	Session Session
}

// Bits serializes the QueryRep (4 bits).
func (q QueryRep) Bits() Bits {
	return Bits{0, 0}.Append(BitsFromUint(uint64(q.Session&3), 2))
}

// QueryAdjust (1001₂) adjusts Q and starts a new round.
type QueryAdjust struct {
	Session Session
	UpDn    int // +1, 0, or −1
}

// Bits serializes the QueryAdjust (9 bits).
func (q QueryAdjust) Bits() Bits {
	b := Bits{1, 0, 0, 1}
	b = b.Append(BitsFromUint(uint64(q.Session&3), 2))
	switch {
	case q.UpDn > 0:
		b = b.Append(Bits{1, 1, 0})
	case q.UpDn < 0:
		b = b.Append(Bits{0, 1, 1})
	default:
		b = b.Append(Bits{0, 0, 0})
	}
	return b
}

// ACK (01₂) acknowledges a tag's RN16; the tag answers with PC+EPC+CRC16.
type ACK struct {
	RN16 uint16
}

// Bits serializes the ACK (18 bits).
func (a ACK) Bits() Bits {
	return Bits{0, 1}.Append(BitsFromUint(uint64(a.RN16), 16))
}

// NAK (11000000₂) returns tags to arbitrate.
type NAK struct{}

// Bits serializes the NAK (8 bits).
func (NAK) Bits() Bits { return Bits{1, 1, 0, 0, 0, 0, 0, 0} }

// ReqRN (11000001₂) requests a new RN16 handle; protected by CRC-16.
type ReqRN struct {
	RN16 uint16
}

// Bits serializes the ReqRN (40 bits).
func (r ReqRN) Bits() Bits {
	b := Bits{1, 1, 0, 0, 0, 0, 0, 1}.Append(BitsFromUint(uint64(r.RN16), 16))
	return b.Append(CRC16(b))
}

// MemBank selects tag memory for Select masks.
type MemBank uint8

// Gen2 memory banks.
const (
	BankRFU MemBank = iota
	BankEPC
	BankTID
	BankUser
)

// Select (1010₂) asserts or deasserts tags' SL/inventoried flags by mask.
// The reproduction uses it to single out the relay-embedded reference tag.
type Select struct {
	Target   uint8 // 3 bits: which flag to modify
	Action   uint8 // 3 bits
	MemBank  MemBank
	Pointer  uint8 // simplified single-byte EBV
	Mask     Bits
	Truncate bool
}

// Bits serializes the Select with its CRC-16.
func (s Select) Bits() Bits {
	b := Bits{1, 0, 1, 0}
	b = b.Append(BitsFromUint(uint64(s.Target&7), 3))
	b = b.Append(BitsFromUint(uint64(s.Action&7), 3))
	b = b.Append(BitsFromUint(uint64(s.MemBank&3), 2))
	b = b.Append(BitsFromUint(uint64(s.Pointer), 8))
	b = b.Append(BitsFromUint(uint64(len(s.Mask)), 8))
	b = b.Append(s.Mask)
	if s.Truncate {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	return b.Append(CRC16(b))
}

// Command is any reader command that serializes to bits.
type Command interface {
	Bits() Bits
}

// Decode parses a reader command frame back into its typed form, verifying
// CRCs where the command carries one. It is used by the tag model and by
// tests to confirm the PIE round trip is faithful.
func Decode(b Bits) (Command, error) {
	switch {
	case len(b) == 4 && b[0] == 0 && b[1] == 0:
		return QueryRep{Session: Session(uintOf(b[2:4]))}, nil
	case len(b) == 18 && b[0] == 0 && b[1] == 1:
		return ACK{RN16: uint16(uintOf(b[2:18]))}, nil
	case len(b) == 22 && b.hasPrefix(1, 0, 0, 0):
		if !CheckCRC5(b) {
			return nil, fmt.Errorf("epc: Query CRC-5 mismatch on %v", b)
		}
		q := Query{
			DR:      DivideRatio(b[4]),
			M:       Miller(uintOf(b[5:7])),
			TRext:   b[7] == 1,
			Sel:     uint8(uintOf(b[8:10])),
			Session: Session(uintOf(b[10:12])),
			Target:  Target(b[12]),
			Q:       uint8(uintOf(b[13:17])),
		}
		return q, nil
	case len(b) == 9 && b.hasPrefix(1, 0, 0, 1):
		qa := QueryAdjust{Session: Session(uintOf(b[4:6]))}
		switch uintOf(b[6:9]) {
		case 0b110:
			qa.UpDn = 1
		case 0b011:
			qa.UpDn = -1
		case 0b000:
			qa.UpDn = 0
		default:
			return nil, fmt.Errorf("epc: QueryAdjust invalid UpDn %v", b[6:9])
		}
		return qa, nil
	case len(b) == 8 && b.Equal(NAK{}.Bits()):
		return NAK{}, nil
	case len(b) == 40 && b.hasPrefix(1, 1, 0, 0, 0, 0, 0, 1):
		if !CheckCRC16(b) {
			return nil, fmt.Errorf("epc: ReqRN CRC-16 mismatch")
		}
		return ReqRN{RN16: uint16(uintOf(b[8:24]))}, nil
	case len(b) >= 40 && (b.hasPrefix(1, 1, 0, 0, 0, 0, 1, 0) || b.hasPrefix(1, 1, 0, 0, 0, 0, 1, 1)):
		return decodeAccess(b)
	case len(b) >= 40 && (b.hasPrefix(1, 1, 0, 0, 0, 1, 0, 0) || b.hasPrefix(1, 1, 0, 0, 0, 1, 0, 1)):
		return decodeSecurity(b)
	case len(b) >= 45 && b.hasPrefix(1, 0, 1, 0):
		if !CheckCRC16(b) {
			return nil, fmt.Errorf("epc: Select CRC-16 mismatch")
		}
		maskLen := int(uintOf(b[20:28]))
		if len(b) != 4+3+3+2+8+8+maskLen+1+16 {
			return nil, fmt.Errorf("epc: Select length %d inconsistent with mask length %d", len(b), maskLen)
		}
		s := Select{
			Target:   uint8(uintOf(b[4:7])),
			Action:   uint8(uintOf(b[7:10])),
			MemBank:  MemBank(uintOf(b[10:12])),
			Pointer:  uint8(uintOf(b[12:20])),
			Mask:     append(Bits(nil), b[28:28+maskLen]...),
			Truncate: b[28+maskLen] == 1,
		}
		return s, nil
	}
	return nil, fmt.Errorf("epc: unrecognized command frame (%d bits)", len(b))
}

func (b Bits) hasPrefix(p ...byte) bool {
	if len(b) < len(p) {
		return false
	}
	for i, v := range p {
		if b[i]&1 != v {
			return false
		}
	}
	return true
}

// TagReply builds the PC + EPC + CRC-16 reply a tag backscatters after an
// ACK. The 16-bit protocol control word encodes the EPC length in words.
func TagReply(e EPC) Bits {
	pc := uint64(len(e.Words)) << 11 // length field in the PC word's top 5 bits
	b := BitsFromUint(pc, 16).Append(e.Bits())
	return b.Append(CRC16(b))
}

// ParseTagReply validates and extracts the EPC from a PC+EPC+CRC16 reply.
func ParseTagReply(b Bits) (EPC, error) {
	if len(b) < 32 {
		return EPC{}, fmt.Errorf("epc: tag reply too short (%d bits)", len(b))
	}
	if !CheckCRC16(b) {
		return EPC{}, fmt.Errorf("epc: tag reply CRC-16 mismatch")
	}
	words := int(uintOf(b[:5]))
	want := 16 + words*16 + 16
	if len(b) != want {
		return EPC{}, fmt.Errorf("epc: tag reply length %d, PC says %d", len(b), want)
	}
	return EPCFromBits(b[16 : 16+words*16])
}
