package epc

import (
	"testing"
)

// Fuzz targets: the decoders face arbitrary bit patterns and sample
// streams (a hostile RF environment IS an adversarial input source), so
// they must never panic and must uphold their round-trip contracts.

func FuzzDecodeCommand(f *testing.F) {
	f.Add([]byte{1, 0, 0, 0, 1, 1, 0, 0})
	f.Add([]byte(Query{Q: 5}.Bits()))
	f.Add([]byte(ACK{RN16: 0xBEEF}.Bits()))
	f.Add([]byte(Select{MemBank: BankEPC, Mask: Bits{1, 0, 1}}.Bits()))
	f.Add([]byte(Read{MemBank: BankTID, WordPtr: 300, WordCount: 2, RN16: 7}.Bits()))
	f.Add([]byte(Kill{Half: 1, Password: 0x1234, RN16: 0x5678}.Bits()))
	f.Fuzz(func(t *testing.T, raw []byte) {
		bits := make(Bits, len(raw))
		for i, b := range raw {
			bits[i] = b & 1
		}
		cmd, err := Decode(bits)
		if err != nil {
			return
		}
		// Contract: whatever decodes must re-encode to the same frame
		// (QueryAdjust/NAK/QueryRep included).
		if !cmd.Bits().Equal(bits) {
			t.Fatalf("decode/encode mismatch: %T from %s gives %s", cmd, bits, cmd.Bits())
		}
	})
}

func FuzzFM0Decode(f *testing.F) {
	f.Add([]byte{1, 1, 0, 1, 0, 0, 1, 0, 0, 0, 1, 1, 0, 1, 1, 0})
	chips := FM0Encode(BitsFromUint(0xACE1, 16))
	seed := make([]byte, len(chips))
	for i, c := range chips {
		seed[i] = byte(c + 1) // 0 or 2
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, raw []byte) {
		soft := make([]float64, len(raw))
		for i, b := range raw {
			soft[i] = float64(int(b)-128) / 64
		}
		bits, err := FM0Decode(soft)
		if err != nil {
			return
		}
		// Contract: a successful decode re-encodes to a chip stream whose
		// signs match the accepted soft prefix wherever the soft value is
		// decisive... at minimum the bit count must fit the chip count.
		if len(FM0Encode(bits)) > len(soft)+2 {
			t.Fatalf("decoded %d bits from %d chips", len(bits), len(soft))
		}
	})
}

func FuzzDecodeEnvelope(f *testing.F) {
	cfg := DefaultPIE()
	env := cfg.EncodeEnvelope(Query{Q: 1}.Bits(), true, 1e6)
	quant := make([]byte, len(env))
	for i, v := range env {
		quant[i] = byte(v * 200)
	}
	f.Add(quant)
	f.Add([]byte{0, 200, 0, 200, 200, 200, 0, 0, 200})
	f.Fuzz(func(t *testing.T, raw []byte) {
		env := make([]float64, len(raw))
		for i, b := range raw {
			env[i] = float64(b) / 200
		}
		// Must never panic; errors are fine.
		dec, err := DecodeEnvelope(env, 1e6)
		if err == nil && len(dec.Bits) > len(raw) {
			t.Fatal("more bits than samples")
		}
	})
}

func FuzzParseEBV(f *testing.F) {
	f.Add([]byte(EBV(300)))
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0, 1})
	f.Fuzz(func(t *testing.T, raw []byte) {
		bits := make(Bits, len(raw))
		for i, b := range raw {
			bits[i] = b & 1
		}
		v, used, err := ParseEBV(bits)
		if err != nil {
			return
		}
		if used > len(bits) || used%8 != 0 {
			t.Fatalf("used %d of %d", used, len(bits))
		}
		// Round trip within the consumed prefix.
		if !EBV(v).Equal(bits[:used]) {
			// EBV canonical form may differ from a padded encoding (e.g.
			// leading zero groups); re-parse instead.
			v2, _, err2 := ParseEBV(EBV(v))
			if err2 != nil || v2 != v {
				t.Fatalf("EBV value unstable: %d vs %d", v, v2)
			}
		}
	})
}

func FuzzParseSGTIN96(f *testing.F) {
	if e, err := (SGTIN96{Filter: 1, Partition: 5, CompanyPrefix: 123456,
		ItemReference: 789, Serial: 42}).Encode(); err == nil {
		w := e.Words
		f.Add(w[0], w[1], w[2], w[3], w[4], w[5])
	}
	f.Add(uint16(0x3000), uint16(0), uint16(0), uint16(0), uint16(0), uint16(0))
	f.Add(uint16(0xFFFF), uint16(0xFFFF), uint16(0xFFFF), uint16(0xFFFF),
		uint16(0xFFFF), uint16(0xFFFF))
	f.Fuzz(func(t *testing.T, w0, w1, w2, w3, w4, w5 uint16) {
		e := NewEPC96(w0, w1, w2, w3, w4, w5)
		s, err := ParseSGTIN96(e)
		if err != nil {
			return // non-SGTIN headers and bad partitions are rejected
		}
		// Anything that parses must survive a lossless round trip.
		if err := s.Validate(); err != nil {
			t.Fatalf("parsed SGTIN fails validation: %v", err)
		}
		back, err := s.Encode()
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if back.String() != e.String() {
			t.Fatalf("round trip changed the EPC: %v → %v", e, back)
		}
	})
}

func FuzzBitsUint(f *testing.F) {
	f.Add([]byte{1, 0, 1, 1})
	f.Add(make([]byte, 64))
	f.Add(make([]byte, 65))
	f.Fuzz(func(t *testing.T, raw []byte) {
		bits := make(Bits, len(raw))
		for i, b := range raw {
			bits[i] = b & 1
		}
		v, err := bits.Uint()
		if len(bits) > 64 {
			if err == nil {
				t.Fatalf("%d-bit field converted without error", len(bits))
			}
			return
		}
		if err != nil {
			t.Fatalf("%d-bit field rejected: %v", len(bits), err)
		}
		// Contract: the value round-trips through BitsFromUint.
		if !BitsFromUint(v, len(bits)).Equal(bits) {
			t.Fatalf("round trip changed %s", bits)
		}
	})
}

func FuzzMillerDecode(f *testing.F) {
	for _, m := range []Miller{Miller2, Miller4, Miller8} {
		if chips, err := MillerEncode(BitsFromUint(0xACE1, 16), m); err == nil {
			seed := make([]byte, len(chips))
			for i, c := range chips {
				seed[i] = byte(c + 1)
			}
			f.Add(seed, uint8(m))
		}
	}
	f.Fuzz(func(t *testing.T, raw []byte, mRaw uint8) {
		m := Miller(mRaw%3 + 1) // Miller2/4/8
		soft := make([]float64, len(raw))
		for i, b := range raw {
			soft[i] = float64(int(b)-128) / 64
		}
		// Must never panic on arbitrary chip streams; errors are fine.
		bits, err := MillerDecode(soft, m)
		if err != nil {
			return
		}
		enc, err := MillerEncode(bits, m)
		if err != nil {
			t.Fatalf("decoded bits will not re-encode: %v", err)
		}
		if len(enc) > len(soft)+2*m.CyclesPerSymbol() {
			t.Fatalf("decoded %d bits (%d chips) from %d chips", len(bits), len(enc), len(soft))
		}
	})
}
