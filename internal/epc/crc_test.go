package epc

import (
	"testing"
	"testing/quick"
)

func TestCRC5KnownVector(t *testing.T) {
	// A Query command's CRC-5 must verify over the whole 22-bit frame.
	q := Query{DR: DR64, M: FM0Mod, TRext: true, Session: S0, Target: TargetA, Q: 4}
	if !CheckCRC5(q.Bits()) {
		t.Fatal("Query CRC-5 does not verify")
	}
}

func TestCRC5DetectsCorruption(t *testing.T) {
	q := Query{Q: 7}.Bits()
	for i := range q {
		c := append(Bits(nil), q...)
		c[i] ^= 1
		if CheckCRC5(c) {
			t.Fatalf("CRC-5 missed single-bit flip at %d", i)
		}
	}
}

func TestCRC5Short(t *testing.T) {
	if CheckCRC5(Bits{1, 0}) {
		t.Fatal("short frame should not verify")
	}
}

func TestCRC16KnownResidue(t *testing.T) {
	// CheckCRC16 and CRC16 must agree: payload ++ CRC16(payload) verifies.
	payload, _ := ParseBits("0011000000001000" + "0011000000000000")
	framed := payload.Append(CRC16(payload))
	if !CheckCRC16(framed) {
		t.Fatal("self-framed CRC-16 does not verify")
	}
}

func TestCRC16DetectsCorruption(t *testing.T) {
	payload := BitsFromUint(0xDEADBEEF, 32)
	framed := payload.Append(CRC16(payload))
	for i := range framed {
		c := append(Bits(nil), framed...)
		c[i] ^= 1
		if CheckCRC16(c) {
			t.Fatalf("CRC-16 missed single-bit flip at %d", i)
		}
	}
}

func TestCRC16Property(t *testing.T) {
	f := func(v uint64, n uint8) bool {
		bits := BitsFromUint(v, int(n%48)+8)
		return CheckCRC16(bits.Append(CRC16(bits)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCRC16Short(t *testing.T) {
	if CheckCRC16(Bits{1}) {
		t.Fatal("short frame should not verify")
	}
}

func TestCRC16Complemented(t *testing.T) {
	// The transmitted CRC is the complement of the register; flipping all
	// 16 CRC bits must therefore break verification.
	payload := BitsFromUint(0x1234, 16)
	framed := payload.Append(CRC16(payload))
	for i := len(framed) - 16; i < len(framed); i++ {
		framed[i] ^= 1
	}
	if CheckCRC16(framed) {
		t.Fatal("un-complemented CRC verified")
	}
}
