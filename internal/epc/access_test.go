package epc

import (
	"testing"
	"testing/quick"
)

func TestEBVRoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		b := EBV(v)
		got, used, err := ParseEBV(b)
		return err == nil && got == v && used == len(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEBVKnownValues(t *testing.T) {
	// Values < 128 fit one block with a 0 extension bit.
	if b := EBV(5); len(b) != 8 || b[0] != 0 {
		t.Fatalf("EBV(5) = %s", b)
	}
	// 128 needs two blocks: 1_0000001 0_0000000.
	b := EBV(128)
	if len(b) != 16 || b[0] != 1 || b[8] != 0 {
		t.Fatalf("EBV(128) = %s", b)
	}
	if got, _, _ := ParseEBV(b); got != 128 {
		t.Fatalf("ParseEBV = %d", got)
	}
}

func TestEBVErrors(t *testing.T) {
	if _, _, err := ParseEBV(Bits{1, 0, 0}); err == nil {
		t.Fatal("truncated EBV parsed")
	}
	// All-extension blocks never terminate.
	long := Bits{}
	for i := 0; i < 6; i++ {
		long = long.Append(Bits{1, 0, 0, 0, 0, 0, 0, 1})
	}
	if _, _, err := ParseEBV(long); err == nil {
		t.Fatal("runaway EBV parsed")
	}
}

func TestReadCommandRoundTrip(t *testing.T) {
	r := Read{MemBank: BankUser, WordPtr: 200, WordCount: 4, RN16: 0xBEEF}
	cmd, err := Decode(r.Bits())
	if err != nil {
		t.Fatal(err)
	}
	got, ok := cmd.(Read)
	if !ok || got != r {
		t.Fatalf("round trip: %+v", cmd)
	}
}

func TestWriteCommandRoundTrip(t *testing.T) {
	w := Write{MemBank: BankUser, WordPtr: 3, Data: 0xA5A5, RN16: 0x1234}
	cmd, err := Decode(w.Bits())
	if err != nil {
		t.Fatal(err)
	}
	got, ok := cmd.(Write)
	if !ok || got != w {
		t.Fatalf("round trip: %+v", cmd)
	}
}

func TestAccessCRCDetection(t *testing.T) {
	b := Read{MemBank: BankTID, WordPtr: 1, WordCount: 2, RN16: 7}.Bits()
	b[12] ^= 1
	if _, err := Decode(b); err == nil {
		t.Fatal("corrupted Read decoded")
	}
}

func TestReadReplyRoundTrip(t *testing.T) {
	words := []uint16{0xDEAD, 0xBEEF, 0x0042}
	rep := ReadReply(words, 0xCAFE)
	got, rn, err := ParseReadReply(rep, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rn != 0xCAFE {
		t.Fatalf("rn = %04X", rn)
	}
	for i, w := range words {
		if got[i] != w {
			t.Fatalf("word %d = %04X", i, got[i])
		}
	}
	// Wrong expected count fails.
	if _, _, err := ParseReadReply(rep, 2); err == nil {
		t.Fatal("wrong word count accepted")
	}
	// Corruption fails.
	rep[5] ^= 1
	if _, _, err := ParseReadReply(rep, 3); err == nil {
		t.Fatal("corrupted reply accepted")
	}
}

func TestWriteReply(t *testing.T) {
	rep := WriteReply(0x5678)
	if !CheckCRC16(rep) {
		t.Fatal("write reply CRC invalid")
	}
	if rep[0] != 0 {
		t.Fatal("write reply header not success")
	}
}
