package epc

import (
	"testing"
	"testing/quick"
)

func TestBitsFromUintRoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		n := 64
		b := BitsFromUint(v, n)
		got, err := b.Uint()
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBitsFromUintWidth(t *testing.T) {
	b := BitsFromUint(0b1011, 4)
	if b.String() != "1011" {
		t.Fatalf("bits = %s", b)
	}
	b = BitsFromUint(0b1011, 6)
	if b.String() != "001011" {
		t.Fatalf("bits = %s", b)
	}
	// Truncation keeps low bits.
	b = BitsFromUint(0b1011, 2)
	if b.String() != "11" {
		t.Fatalf("bits = %s", b)
	}
}

func TestBitsUintErrorsOver64(t *testing.T) {
	if _, err := make(Bits, 65).Uint(); err == nil {
		t.Fatal("expected error for a 65-bit word")
	}
	if v, err := make(Bits, 64).Uint(); err != nil || v != 0 {
		t.Fatalf("64-bit zero word: v=%d err=%v", v, err)
	}
}

func TestBitsAppendEqual(t *testing.T) {
	a := Bits{1, 0}.Append(Bits{1}, Bits{0, 1})
	if a.String() != "10101" {
		t.Fatalf("append = %s", a)
	}
	if !a.Equal(Bits{1, 0, 1, 0, 1}) {
		t.Fatal("Equal false negative")
	}
	if a.Equal(Bits{1, 0, 1, 0}) {
		t.Fatal("Equal ignores length")
	}
	if a.Equal(Bits{1, 0, 1, 0, 0}) {
		t.Fatal("Equal false positive")
	}
}

func TestParseBits(t *testing.T) {
	b, err := ParseBits("10 1_1")
	if err != nil {
		t.Fatal(err)
	}
	if b.String() != "1011" {
		t.Fatalf("parsed = %s", b)
	}
	if _, err := ParseBits("102"); err == nil {
		t.Fatal("expected error for invalid character")
	}
}

func TestEPCRoundTrip(t *testing.T) {
	e := NewEPC96(0x3008, 0x33B2, 0xDDD9, 0x0140, 0x0000, 0x1234)
	b := e.Bits()
	if len(b) != 96 {
		t.Fatalf("EPC bits = %d", len(b))
	}
	got, err := EPCFromBits(b)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(e) {
		t.Fatalf("round trip: %v != %v", got, e)
	}
}

func TestEPCFromBitsRejectsOddLength(t *testing.T) {
	if _, err := EPCFromBits(make(Bits, 17)); err == nil {
		t.Fatal("expected error")
	}
}

func TestEPCString(t *testing.T) {
	e := EPC{Words: []uint16{0xABCD, 0x0001}}
	if got := e.String(); got != "ABCD-0001" {
		t.Fatalf("String = %q", got)
	}
}

func TestEPCEqual(t *testing.T) {
	a := NewEPC96(1, 2, 3, 4, 5, 6)
	b := NewEPC96(1, 2, 3, 4, 5, 7)
	if a.Equal(b) {
		t.Fatal("different EPCs compare equal")
	}
	if a.Equal(EPC{Words: []uint16{1}}) {
		t.Fatal("different lengths compare equal")
	}
}
