package epc

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestSGTINRoundTrip(t *testing.T) {
	s := SGTIN96{Filter: 1, Partition: 5, CompanyPrefix: 614141, ItemReference: 812345, Serial: 6789}
	e, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseSGTIN96(e)
	if err != nil {
		t.Fatal(err)
	}
	if got != s {
		t.Fatalf("round trip: %+v", got)
	}
	if !strings.Contains(s.String(), "sgtin:614141.812345.6789") {
		t.Fatalf("String = %s", s)
	}
}

func TestSGTINRoundTripProperty(t *testing.T) {
	f := func(filter, part uint8, cp, ir, serial uint64) bool {
		p := part % 7
		widths := sgtinPartitions[p]
		s := SGTIN96{
			Filter:        filter % 8,
			Partition:     p,
			CompanyPrefix: cp % (1 << widths[0]),
			ItemReference: ir % (1 << widths[1]),
			Serial:        serial % (1 << 38),
		}
		e, err := s.Encode()
		if err != nil {
			return false
		}
		got, err := ParseSGTIN96(e)
		return err == nil && got == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSGTINValidation(t *testing.T) {
	if _, err := (SGTIN96{Partition: 9}).Encode(); err == nil {
		t.Fatal("bad partition accepted")
	}
	if _, err := (SGTIN96{Partition: 6, CompanyPrefix: 1 << 21}).Encode(); err == nil {
		t.Fatal("oversized company prefix accepted")
	}
	if _, err := (SGTIN96{Serial: 1 << 39}).Encode(); err == nil {
		t.Fatal("oversized serial accepted")
	}
	// Non-SGTIN header rejected on parse.
	if _, err := ParseSGTIN96(NewEPC96(0xE280, 1, 2, 3, 4, 5)); err == nil {
		t.Fatal("non-SGTIN parsed")
	}
}

func TestTimingBasics(t *testing.T) {
	tm := NewTiming(DefaultPIE())
	// T1 ≥ RTcal (37.5 µs here) and ≥ 10/BLF (20 µs).
	if tm.T1() < 37*time.Microsecond || tm.T1() > 40*time.Microsecond {
		t.Fatalf("T1 = %v", tm.T1())
	}
	if tm.T2() != seconds(8/500e3) {
		t.Fatalf("T2 = %v", tm.T2())
	}
	if tm.T4() != seconds(75e-6) {
		t.Fatalf("T4 = %v", tm.T4())
	}
	// A Query (22 bits) takes longer than a QueryRep (4 bits).
	q := tm.CommandAirtime(Query{}.Bits(), true)
	qr := tm.CommandAirtime(QueryRep{}.Bits(), false)
	if q <= qr {
		t.Fatalf("Query %v vs QueryRep %v", q, qr)
	}
	// RN16 at 500 kHz FM0: (6+16+1) symbols × 2 µs = 46 µs.
	if got := tm.ReplyAirtime(16, FM0Mod, false); got != 46*time.Microsecond {
		t.Fatalf("RN16 airtime = %v", got)
	}
	// TRext adds 12 symbols; Miller-4 quadruples the per-bit time.
	if tm.ReplyAirtime(16, FM0Mod, true) <= tm.ReplyAirtime(16, FM0Mod, false) {
		t.Fatal("TRext did not lengthen the reply")
	}
	if tm.ReplyAirtime(16, Miller4, false) <= 3*tm.ReplyAirtime(16, FM0Mod, false) {
		t.Fatal("Miller-4 should be ~4× slower")
	}
}

func TestSlotAndRoundDuration(t *testing.T) {
	tm := NewTiming(DefaultPIE())
	empty := tm.SlotDuration(SlotEmpty, 128)
	coll := tm.SlotDuration(SlotCollision, 128)
	single := tm.SlotDuration(SlotSingle, 128)
	if !(empty < coll && coll < single) {
		t.Fatalf("slot ordering: empty %v coll %v single %v", empty, coll, single)
	}
	// A 16-slot round with 10 empties, 2 collisions, 4 singles lands in
	// the single-digit millisecond range — which is what makes thousands
	// of tags per minute feasible.
	round := tm.RoundDuration(16, 10, 2, 4, 128)
	if round < 2*time.Millisecond || round > 20*time.Millisecond {
		t.Fatalf("round duration = %v", round)
	}
}

// Properties of the link-timing model, over randomized PIE profiles.
func TestTimingProperties(t *testing.T) {
	mkCfg := func(tari8, one8, tr8 uint8) PIEConfig {
		cfg := DefaultPIE()
		cfg.Tari = (6.25 + float64(tari8%19)) * 1e-6 // 6.25–25 µs
		cfg.OneLen = 1.5 + float64(one8%6)*0.1       // 1.5–2.0 Tari
		cfg.TRcal = (1.1 + float64(tr8%19)*0.1) * cfg.RTcal()
		return cfg
	}
	prop := func(tari8, one8, tr8 uint8, nBits8 uint8) bool {
		cfg := mkCfg(tari8, one8, tr8)
		if cfg.Validate() != nil {
			return true // out-of-spec profiles are rejected elsewhere
		}
		tm := NewTiming(cfg)
		// T1 respects both floors.
		if tm.T1() < seconds(cfg.RTcal()) || tm.T1() < seconds(10/cfg.BLF()) {
			return false
		}
		// Longer frames cost more air, bit by bit.
		n := 8 + int(nBits8)
		shorter := tm.ReplyAirtime(n, FM0Mod, false)
		longer := tm.ReplyAirtime(n+1, FM0Mod, false)
		if longer <= shorter {
			return false
		}
		// Miller trades airtime for robustness: M>1 is always slower.
		if tm.ReplyAirtime(n, Miller4, false) <= tm.ReplyAirtime(n, FM0Mod, false) {
			return false
		}
		// The TRext pilot adds a fixed positive cost.
		if tm.ReplyAirtime(n, FM0Mod, true) <= tm.ReplyAirtime(n, FM0Mod, false) {
			return false
		}
		// A command with a 1-bit costs more than with a 0-bit.
		c1 := tm.CommandAirtime(Bits{1, 1, 1, 1}, false)
		c0 := tm.CommandAirtime(Bits{0, 0, 0, 0}, false)
		return c1 > c0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// Property: a round's duration decomposes monotonically — more slots of
// any outcome cost more airtime, and a success always costs at least a
// collision, which costs at least an empty slot.
func TestRoundDurationMonotone(t *testing.T) {
	tm := NewTiming(DefaultPIE())
	if !(tm.SlotDuration(SlotSingle, 96) > tm.SlotDuration(SlotCollision, 96) &&
		tm.SlotDuration(SlotCollision, 96) > tm.SlotDuration(SlotEmpty, 96)) {
		t.Fatal("slot outcome ordering violated")
	}
	prop := func(e8, c8, s8 uint8) bool {
		e, c, s := int(e8%50), int(c8%50), int(s8%50)
		base := tm.RoundDuration(e+c+s, e, c, s, 96)
		if tm.RoundDuration(e+c+s+1, e+1, c, s, 96) <= base {
			return false
		}
		if tm.RoundDuration(e+c+s+1, e, c+1, s, 96) <= base {
			return false
		}
		return tm.RoundDuration(e+c+s+1, e, c, s+1, 96) > base
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
