package swarm

import (
	"context"
	"fmt"

	"rfly/internal/fault"
	"rfly/internal/geom"
	"rfly/internal/obs"
	"rfly/internal/relay"
	"rfly/internal/rng"
	"rfly/internal/sim"
)

// Swarm telemetry in the process-wide registry (surfaces in /metrics).
var (
	mElections       = obs.Default().Counter("swarm_elections_total")
	mPromotions      = obs.Default().Counter("swarm_promotions_total")
	mFailoverLatency = obs.Default().Histogram("swarm_failover_latency_ticks",
		[]float64{0, 1, 2, 4, 8, 16, 32})
)

// servingCell is the cell holding the mission's relay station; the
// deployment's single serving relay always flies there.
const servingCell = 0

// member is one fleet drone: its serializable state plus the live relay
// hardware model and the watchdog that keeps its shadow lock warm.
type member struct {
	MemberState
	rel *relay.Relay
	wd  *relay.Watchdog
}

// Coordinator manages the fleet for one sortie. Like the supervisor it
// is rebuilt each sortie; everything that must survive the rebuild
// travels in State. The deployment's Relay pointer is always the current
// primary's hardware — promotion is a pointer swap plus a power-on, so
// it completes within the escalation tick that requested it and consumes
// no shared RNG draws (which is what makes a hot failover bit-identical
// to an uninterrupted run).
type Coordinator struct {
	cfg Config
	d   *sim.Deployment

	members []*member
	term    uint64
	primary int
	seed    uint64

	tick       int // coordinator ticks since construction
	lossTick   int // tick the primary went down, -1 when serving
	partitions int // active MeshPartition events

	elections  int
	promotions int
	handoffs   []HandoffRecord

	// faultTarget pins each swarm-directed event to the member it hit at
	// apply time, so a revert heals that member even if the primaryship
	// moved in between.
	faultTarget map[fault.Event]int

	// OnHandoff, when set, is called with each promotion's record before
	// it is committed — the engine stamps the SAR capture-buffer progress
	// there. It must not touch the deployment.
	OnHandoff func(*HandoffRecord)
}

// NewCoordinator builds the fleet over a deployment. A fresh mission
// (empty st.Members) stations members round-robin across cells, elects
// the first primary, and pre-locks the hot shadows on the reader's
// current frequency plan; a carried-over fleet is restored exactly and
// re-elects only if the carried primary is no longer eligible. The
// deployment's relay is replaced by the primary member's hardware.
func NewCoordinator(ctx context.Context, cfg Config, d *sim.Deployment, st State, seed uint64) (*Coordinator, error) {
	cfg.Defaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !cfg.Enabled() {
		return nil, fmt.Errorf("swarm: coordinator needs at least one relay")
	}
	if d == nil || d.Relay == nil {
		return nil, fmt.Errorf("swarm: coordinator needs a relay deployment")
	}
	if len(st.Members) != 0 && len(st.Members) != cfg.Relays {
		return nil, fmt.Errorf("swarm: carried fleet has %d members, config has %d",
			len(st.Members), cfg.Relays)
	}

	c := &Coordinator{
		cfg:         cfg,
		d:           d,
		seed:        seed,
		term:        st.Term,
		primary:     st.Primary,
		lossTick:    -1,
		faultTarget: map[fault.Event]int{},
	}
	fresh := len(st.Members) == 0
	for id := 0; id < cfg.Relays; id++ {
		rel := relay.New(d.Relay.Cfg, d.Stream(fmt.Sprintf("swarm-member-%d", id)))
		// The fleet shares the deployment relay's antenna state, so
		// carried-over isolation damage survives the install() swap. (The
		// simplification: antenna damage is fleet-wide, not per-airframe.)
		rel.SetAntennaIsolationDB(d.Relay.AntennaIsolationDB())
		wd, err := relay.NewWatchdog(rel, relay.WatchdogConfig{})
		if err != nil {
			return nil, err
		}
		m := &member{rel: rel, wd: wd}
		if fresh {
			m.Cell = id % cfg.Cells
			m.Alive = true
			m.Powered = true
			m.Pos = c.cellStation(m.Cell)
		} else {
			m.MemberState = st.Members[id]
			if m.Locked {
				rel.Lock(m.ReaderFreq)
				if m.CFOHz != 0 {
					rel.ApplyCFO(m.CFOHz)
				}
			}
		}
		c.members = append(c.members, m)
	}
	if fresh {
		// No carried primary: elect one before launch.
		if !c.elect(ctx) {
			return nil, fmt.Errorf("swarm: no eligible member for the first election")
		}
	} else if c.primary < 0 || c.primary >= len(c.members) {
		return nil, fmt.Errorf("swarm: carried primary %d out of range", c.primary)
	} else if !c.eligible(c.members[c.primary]) {
		// The carried primary died (or browned out) at the last commit and
		// the ground crew could not revive it: hand the mission to a new
		// primary before launch. A fleet with no candidate launches dark
		// and the supervisor aborts the sortie.
		c.elect(ctx)
	}
	// Ground prep: hot shadows are locked onto the reader's current
	// channel before launch (the frequency plan is known); cold spares
	// stay dark until promoted.
	if !cfg.ColdSpares {
		for id, m := range c.members {
			if id == c.primary || !m.Alive || !m.Powered || m.rel.Locked() {
				continue
			}
			m.rel.Lock(d.ReaderCarrierHz())
			c.syncFromRelay(m)
		}
	}
	c.install()
	return c, nil
}

// cellStation is cell k's hover station: the mission relay station for
// the serving cell, spaced back toward the reader for the others.
func (c *Coordinator) cellStation(cell int) geom.Point {
	p := c.d.RelayPlanPos
	return geom.P(p.X-float64(cell)*c.cfg.CellSpacingM, p.Y, p.Z)
}

// install points the deployment at the current primary's hardware.
func (c *Coordinator) install() {
	m := c.members[c.primary]
	c.d.Relay = m.rel
	c.d.RelayPos = m.Pos
	if c.d.EmbeddedTag != nil {
		c.d.EmbeddedTag.Pos = m.Pos
	}
	c.d.SetRelayPowered(m.Alive && m.Powered)
}

// syncFromRelay refreshes a member's serializable lock state from its
// hardware model.
func (c *Coordinator) syncFromRelay(m *member) {
	m.Locked = m.rel.Locked()
	m.ReaderFreq = m.rel.ReaderFreq()
	m.CFOHz = m.rel.CFOHz()
}

// connected reports whether a cell can donate a shadow to the serving
// cell under the configured topology. An active mesh partition severs
// every cross-cell link.
func (c *Coordinator) connected(cell int) bool {
	if cell == servingCell {
		return true
	}
	if c.partitions > 0 {
		return false
	}
	switch c.cfg.Topology {
	case TopoMinimal:
		return false
	case TopoCrossRow:
		return cell == servingCell-1 || cell == servingCell+1
	default:
		return true
	}
}

// eligible reports whether a member can hold the primaryship right now.
func (c *Coordinator) eligible(m *member) bool {
	return m.Alive && m.Powered && c.connected(m.Cell)
}

// lockServes reports whether a member's carrier lock would serve the
// reader's CURRENT channel — the member-level RelayLockHealthy.
func (c *Coordinator) lockServes(m *member) bool {
	if !m.rel.Locked() {
		return false
	}
	cut := m.rel.Cfg.LPFCutoff
	return abs(m.rel.ReaderFreq()-c.d.ReaderCarrierHz()) < cut && abs(m.rel.CFOHz()) < cut
}

// electionScore is a pure function of (mission seed, term, member ID):
// re-running an election for the same term always ranks the same way,
// which is what lets a killed-and-resumed chaos run replay its
// promotions bit-identically.
func (c *Coordinator) electionScore(term uint64, id int) uint64 {
	return rng.New(c.seed).Split(fmt.Sprintf("swarm-election-%d-%d", term, id)).Uint64()
}

// elect runs one term-numbered election over the eligible members and
// installs the winner as primary. Ranking prefers members whose lock
// already serves the reader's channel (hot shadows), then members
// stationed nearer the serving cell, then the seeded score, with the
// lowest ID as the final tiebreak. Returns false — without consuming a
// term — when no member is eligible.
func (c *Coordinator) elect(ctx context.Context) bool {
	best := -1
	var bestHot bool
	var bestDist int
	var bestScore uint64
	term := c.term + 1
	candidates := 0
	for id, m := range c.members {
		if !c.eligible(m) {
			continue
		}
		candidates++
		hot := c.lockServes(m)
		dist := m.Cell - servingCell
		if dist < 0 {
			dist = -dist
		}
		score := c.electionScore(term, id)
		better := false
		switch {
		case best < 0:
			better = true
		case hot != bestHot:
			better = hot
		case dist != bestDist:
			better = dist < bestDist
		case score != bestScore:
			better = score > bestScore
		}
		if better {
			best, bestHot, bestDist, bestScore = id, hot, dist, score
		}
	}
	if best < 0 {
		return false
	}
	c.term = term
	c.elections++
	mElections.Inc()
	_, span := obs.StartSpan(ctx, "swarm.election")
	span.Int("term", int64(c.term)).
		Int("winner", int64(best)).
		Int("candidates", int64(candidates)).
		Bool("hot", bestHot)
	span.End()
	c.primary = best
	return true
}

// TickCtx is the coordinator's per-tick upkeep, run after the fault
// injector and before the supervisor: it syncs the primary's member
// state from the deployment (the injector and supervisor act on the
// deployment), grounds a dead primary for good (a battery swap cannot
// revive a destroyed airframe), flies serving-cell shadows in formation
// with the primary, and ticks the hot shadows' watchdogs so their
// pre-locks track the reader's channel.
func (c *Coordinator) TickCtx(ctx context.Context) {
	c.tick++
	p := c.members[c.primary]
	if !p.Alive && c.d.RelayPowered() {
		c.d.SetRelayPowered(false)
	}
	p.Powered = c.d.RelayPowered()
	p.Pos = c.d.RelayPos
	c.syncFromRelay(p)
	if p.Alive && p.Powered {
		c.lossTick = -1
	} else if c.lossTick < 0 {
		c.lossTick = c.tick
	}

	for id, m := range c.members {
		if id == c.primary || !m.Alive || !m.Powered {
			continue
		}
		if m.Cell == servingCell {
			// Formation flight: local shadows hold position on the primary,
			// so a promotion inherits the exact capture geometry.
			m.Pos = c.d.RelayPos
		}
		if !c.cfg.ColdSpares {
			m.wd.TickCtx(ctx, shadowSense{d: c.d, m: m})
			c.syncFromRelay(m)
		}
	}
}

// shadowSense adapts the deployment's geometry sense to one shadow
// member's front end at its own position and supply rail.
type shadowSense struct {
	d *sim.Deployment
	m *member
}

// Sense implements relay.CarrierSense.
func (s shadowSense) Sense() (float64, float64, bool) {
	if !s.m.Powered {
		return 0, 0, false
	}
	return s.d.SenseAt(s.m.Pos)
}

// PrimaryWatchdog returns the watchdog bound to the current primary's
// hardware; the supervisor re-fetches it after a failover so its re-lock
// rung always drives the relay that is actually serving.
func (c *Coordinator) PrimaryWatchdog() *relay.Watchdog {
	return c.members[c.primary].wd
}

// PrimaryAlive reports whether the serving airframe still exists — the
// supervisor's battery-swap rung is pointless (and forbidden) on a
// destroyed one.
func (c *Coordinator) PrimaryAlive() bool { return c.members[c.primary].Alive }

// Primary returns the current primary's member ID.
func (c *Coordinator) Primary() int { return c.primary }

// Term returns the current election term.
func (c *Coordinator) Term() uint64 { return c.term }

// FailoverCtx implements the supervisor's failover rung: when the
// primary is lost (dead airframe or dark rail — mere lock trouble stays
// with the watchdog), elect a successor and promote it in place. The
// promotion is the mission's handoff checkpoint event: it records the
// term, the endpoints, the capture-buffer progress, and the outage
// latency, then swaps the deployment onto the successor's hardware.
// Returns whether a promotion happened.
func (c *Coordinator) FailoverCtx(ctx context.Context) bool {
	p := c.members[c.primary]
	if p.Alive && p.Powered {
		return false
	}
	ctx, span := obs.StartSpan(ctx, "swarm.promotion")
	defer span.End()
	old := c.primary
	if !c.elect(ctx) {
		span.Bool("promoted", false)
		return false
	}
	m := c.members[c.primary]
	latency := 0
	if c.lossTick >= 0 {
		latency = c.tick - c.lossTick
	}
	rec := HandoffRecord{
		Term:         c.term,
		FromID:       old,
		ToID:         c.primary,
		Tick:         c.tick,
		LatencyTicks: latency,
		PreLocked:    c.lockServes(m),
	}
	c.install()
	c.lossTick = -1
	c.promotions++
	mPromotions.Inc()
	mFailoverLatency.Observe(float64(latency))
	if c.OnHandoff != nil {
		c.OnHandoff(&rec)
	}
	c.handoffs = append(c.handoffs, rec)
	span.Bool("promoted", true).
		Int("term", int64(rec.Term)).
		Int("from", int64(rec.FromID)).
		Int("to", int64(rec.ToID)).
		Int("latency_ticks", int64(rec.LatencyTicks)).
		Int("sar_captured", int64(rec.SARCaptured)).
		Bool("pre_locked", rec.PreLocked)
	return true
}

// targetMember resolves a swarm-directed event's Param: 0 hits the
// current primary, k ≥ 1 hits member k−1.
func (c *Coordinator) targetMember(ev fault.Event) (*member, int, error) {
	id := int(ev.Param) - 1
	if ev.Param == 0 {
		id = c.primary
	}
	if id < 0 || id >= len(c.members) {
		return nil, 0, fmt.Errorf("swarm: %v targets member %d of a %d-member fleet",
			ev.Class, id, len(c.members))
	}
	return c.members[id], id, nil
}

// ApplyFault implements fault.Target over the fleet: the swarm-directed
// classes hit individual members (or the mesh), everything else passes
// through to the deployment.
func (c *Coordinator) ApplyFault(ev fault.Event) error {
	switch ev.Class {
	case fault.RelayDeath:
		m, id, err := c.targetMember(ev)
		if err != nil {
			return err
		}
		m.Alive = false
		m.Powered = false
		m.rel.Unlock()
		c.syncFromRelay(m)
		c.faultTarget[ev] = id
		if id == c.primary {
			c.d.SetRelayPowered(false)
		}
	case fault.RelayBrownOut:
		m, id, err := c.targetMember(ev)
		if err != nil {
			return err
		}
		m.Powered = false
		m.rel.Unlock()
		c.syncFromRelay(m)
		c.faultTarget[ev] = id
		if id == c.primary {
			c.d.SetRelayPowered(false)
		}
	case fault.MeshPartition:
		c.partitions++
	default:
		return c.d.ApplyFault(ev)
	}
	return nil
}

// RevertFault implements fault.Target: relay death is permanent, a
// brown-out's rail recovers (unlocked — the PLLs lost state), and a
// healed partition reconnects the mesh.
func (c *Coordinator) RevertFault(ev fault.Event) error {
	switch ev.Class {
	case fault.RelayDeath:
		// A destroyed airframe stays destroyed.
	case fault.RelayBrownOut:
		id, ok := c.faultTarget[ev]
		if !ok {
			return nil
		}
		delete(c.faultTarget, ev)
		m := c.members[id]
		if !m.Alive {
			return nil
		}
		m.Powered = true
		if id == c.primary {
			c.d.SetRelayPowered(true)
		}
	case fault.MeshPartition:
		if c.partitions > 0 {
			c.partitions--
		}
	default:
		return c.d.RevertFault(ev)
	}
	return nil
}

// State returns the fleet's serializable carryover. The primary's state
// is re-synced from the deployment so a commit taken between coordinator
// ticks still sees the freshest lock state.
func (c *Coordinator) State() State {
	p := c.members[c.primary]
	p.Powered = c.d.RelayPowered()
	p.Pos = c.d.RelayPos
	c.syncFromRelay(p)
	st := State{Term: c.term, Primary: c.primary}
	for _, m := range c.members {
		st.Members = append(st.Members, m.MemberState)
	}
	return st
}

// Counts returns how many elections and promotions this coordinator ran.
func (c *Coordinator) Counts() (elections, promotions int) {
	return c.elections, c.promotions
}

// Handoffs returns the promotion records in order. The slice is shared;
// do not mutate it.
func (c *Coordinator) Handoffs() []HandoffRecord { return c.handoffs }

// WatchdogStats sums lock supervision across the whole fleet: the
// primary's re-locks and every shadow's pre-lock upkeep.
func (c *Coordinator) WatchdogStats() relay.WatchdogStats {
	var ws relay.WatchdogStats
	for _, m := range c.members {
		s := m.wd.Stats()
		ws.LossEvents += s.LossEvents
		ws.Resweeps += s.Resweeps
		ws.Relocks += s.Relocks
	}
	return ws
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
