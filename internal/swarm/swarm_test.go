package swarm

import (
	"context"
	"testing"

	"rfly/internal/fault"
	"rfly/internal/geom"
	"rfly/internal/sim"
	"rfly/internal/world"
)

// rig builds a healthy relay deployment (reader far enough that tags
// need the relay) and a coordinator over it.
func rig(t *testing.T, cfg Config, seed uint64) (*sim.Deployment, *Coordinator) {
	t.Helper()
	d := sim.New(sim.Config{
		Scene:     world.OpenSpace(),
		ReaderPos: geom.P2(-12, 1),
		UseRelay:  true,
		RelayPos:  geom.P2(0, 0),
	}, seed)
	c, err := NewCoordinator(context.Background(), cfg, d, State{}, seed)
	if err != nil {
		t.Fatal(err)
	}
	return d, c
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Relays: -1},
		{Relays: 2, Topology: Topology(9)},
		{Relays: 2, Cells: 3},
	}
	for _, c := range bad {
		c.Defaults()
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v validated", c)
		}
	}
	good := Config{Relays: 3, Cells: 2, Topology: TopoCrossRow}
	good.Defaults()
	if err := good.Validate(); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
	if !good.Enabled() || (Config{}).Enabled() {
		t.Error("Enabled should track Relays > 0")
	}
}

func TestParseTopologyRoundTrip(t *testing.T) {
	for _, topo := range []Topology{TopoMinimal, TopoCrossRow, TopoAllConnect} {
		got, err := ParseTopology(topo.String())
		if err != nil || got != topo {
			t.Errorf("round trip of %v: got %v, %v", topo, got, err)
		}
	}
	if _, err := ParseTopology("full-mesh"); err == nil {
		t.Error("unknown topology parsed")
	}
}

func TestFirstElectionDeterministic(t *testing.T) {
	_, a := rig(t, Config{Relays: 4}, 42)
	_, b := rig(t, Config{Relays: 4}, 42)
	if a.Primary() != b.Primary() || a.Term() != b.Term() {
		t.Fatalf("same seed elected differently: %d/%d vs %d/%d",
			a.Primary(), a.Term(), b.Primary(), b.Term())
	}
	if a.Term() != 1 {
		t.Fatalf("first election should open term 1, got %d", a.Term())
	}
}

// kill destroys the current primary and returns the fault event so the
// test can revert it.
func kill(t *testing.T, c *Coordinator) fault.Event {
	t.Helper()
	ev := fault.Event{Class: fault.RelayDeath, Start: 1, Severity: 1}
	if err := c.ApplyFault(ev); err != nil {
		t.Fatal(err)
	}
	return ev
}

func TestTopologyBoundsPromotion(t *testing.T) {
	ctx := context.Background()

	// Minimal connectivity: members in other cells cannot donate. With
	// the serving cell's only member dead, there is no successor.
	_, c := rig(t, Config{Relays: 3, Cells: 3, Topology: TopoMinimal}, 7)
	if c.Primary() != 0 {
		t.Fatalf("serving-cell member should win the first election, got %d", c.Primary())
	}
	kill(t, c)
	if c.FailoverCtx(ctx) {
		t.Fatal("minimal topology promoted across cells")
	}

	// Cross-row: the adjacent cell's member is the only candidate.
	_, c = rig(t, Config{Relays: 3, Cells: 3, Topology: TopoCrossRow}, 7)
	kill(t, c)
	if !c.FailoverCtx(ctx) || c.Primary() != 1 {
		t.Fatalf("cross-row should promote the adjacent cell's member 1, got %d", c.Primary())
	}

	// All-connect: every live member is a candidate; the nearer cell
	// still wins the distance rank.
	_, c = rig(t, Config{Relays: 3, Cells: 3, Topology: TopoAllConnect}, 7)
	kill(t, c)
	if !c.FailoverCtx(ctx) || c.Primary() != 1 {
		t.Fatalf("all-connect should promote nearest member 1, got %d", c.Primary())
	}
	// Kill again: only the far cell remains.
	kill(t, c)
	if !c.FailoverCtx(ctx) || c.Primary() != 2 {
		t.Fatalf("second failover should reach cell 2's member, got %d", c.Primary())
	}
}

func TestMeshPartitionSeversDonation(t *testing.T) {
	ctx := context.Background()
	_, c := rig(t, Config{Relays: 3, Cells: 3, Topology: TopoAllConnect}, 7)
	part := fault.Event{Class: fault.MeshPartition, Start: 1, Duration: 5, Severity: 1}
	if err := c.ApplyFault(part); err != nil {
		t.Fatal(err)
	}
	kill(t, c)
	if c.FailoverCtx(ctx) {
		t.Fatal("partitioned mesh still donated a cross-cell shadow")
	}
	if err := c.RevertFault(part); err != nil {
		t.Fatal(err)
	}
	if !c.FailoverCtx(ctx) {
		t.Fatal("healed partition should allow the promotion")
	}
	if e, p := c.Counts(); e != 2 || p != 1 {
		t.Fatalf("want 2 elections, 1 promotion; got %d, %d", e, p)
	}
}

func TestDeathIsPermanentBrownOutIsNot(t *testing.T) {
	d, c := rig(t, Config{Relays: 3}, 7)

	// Brown-out on the primary drops the deployment rail; the revert
	// heals the member it hit (pinned at apply time), even though the
	// primaryship moved in between.
	brown := fault.Event{Class: fault.RelayBrownOut, Start: 1, Duration: 3, Severity: 1}
	old := c.Primary()
	if err := c.ApplyFault(brown); err != nil {
		t.Fatal(err)
	}
	if d.RelayPowered() {
		t.Fatal("primary brown-out left the deployment rail up")
	}
	if !c.FailoverCtx(context.Background()) {
		t.Fatal("no promotion after primary brown-out")
	}
	if !d.RelayPowered() {
		t.Fatal("promotion should restore service")
	}
	if err := c.RevertFault(brown); err != nil {
		t.Fatal(err)
	}
	st := c.State()
	if !st.Members[old].Powered {
		t.Fatal("brown-out revert did not heal the member it hit")
	}
	if c.Primary() == old {
		t.Fatal("revert must not snap the primaryship back")
	}

	// Death is forever: the revert is a no-op.
	death := fault.Event{Class: fault.RelayDeath, Start: 5, Duration: 2, Severity: 1, Param: float64(old) + 1}
	if err := c.ApplyFault(death); err != nil {
		t.Fatal(err)
	}
	if err := c.RevertFault(death); err != nil {
		t.Fatal(err)
	}
	if st := c.State(); st.Members[old].Alive || st.Members[old].Powered {
		t.Fatal("destroyed airframe revived on revert")
	}
}

func TestNonSwarmFaultsDelegate(t *testing.T) {
	d, c := rig(t, Config{Relays: 2}, 7)
	gust := fault.Event{Class: fault.WindGust, Start: 1, Duration: 2, Severity: 1, Param: 2}
	before := d.RelayPos
	if err := c.ApplyFault(gust); err != nil {
		t.Fatal(err)
	}
	if d.RelayPos == before {
		t.Fatal("delegated gust did not displace the relay")
	}
	if err := c.RevertFault(gust); err != nil {
		t.Fatal(err)
	}
}

func TestSwarmFaultsNeedCoordinator(t *testing.T) {
	d := sim.New(sim.Config{
		Scene:     world.OpenSpace(),
		ReaderPos: geom.P2(-12, 1),
		UseRelay:  true,
		RelayPos:  geom.P2(0, 0),
	}, 7)
	ev := fault.Event{Class: fault.RelayDeath, Start: 0, Severity: 1}
	if err := d.ApplyFault(ev); err == nil {
		t.Fatal("bare deployment accepted a swarm-directed fault")
	}
	if err := d.RevertFault(ev); err != nil {
		t.Fatalf("revert of a rejected apply should be a no-op, got %v", err)
	}
}

func TestRestoreReElectsWhenCarriedPrimaryDead(t *testing.T) {
	d, c := rig(t, Config{Relays: 3}, 7)
	kill(t, c)
	st := c.State()
	st.LandAndSwap()
	c2, err := NewCoordinator(context.Background(), Config{Relays: 3}, d, st, 7)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Primary() == c.Primary() {
		t.Fatal("restore kept a dead primary")
	}
	if c2.Term() != c.Term()+1 {
		t.Fatalf("restore election should advance the carried term: %d after %d", c2.Term(), c.Term())
	}
	if !c2.PrimaryAlive() {
		t.Fatal("restored primary is dead")
	}
}

func TestLandAndSwap(t *testing.T) {
	st := State{Members: []MemberState{
		{Alive: true, Powered: true, Locked: true, ReaderFreq: 915e6},
		{Alive: true, Powered: false, Locked: true, ReaderFreq: 915e6, CFOHz: 100},
		{Alive: false, Powered: false, Locked: true},
	}}
	st.LandAndSwap()
	if !st.Members[0].Locked {
		t.Fatal("powered member should keep its lock through the turnaround")
	}
	m1 := st.Members[1]
	if !m1.Powered || m1.Locked || m1.ReaderFreq != 0 || m1.CFOHz != 0 {
		t.Fatalf("dark member should get a fresh battery and a cold PLL: %+v", m1)
	}
	m2 := st.Members[2]
	if m2.Powered || m2.Locked {
		t.Fatalf("dead member revived by the ground crew: %+v", m2)
	}
}
