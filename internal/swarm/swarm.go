// Package swarm is the mission-scoped multi-relay coordinator: it
// manages a fleet of relay drones as a routed mesh over the existing
// relay machinery, elects a primary per coverage cell with a
// deterministic, seeded, term-numbered election, keeps shadow relays
// pre-locked on the reader's frequency plan through the relay.Watchdog
// carrier-sense path, and — when the primary dies mid-sortie — promotes
// a shadow in place so the SAR capture continues over a seamless buffer.
//
// Determinism is the same contract the rest of the repo keeps: every
// election draw comes from a pure function of (mission seed, term,
// member ID), never from iteration order or wall clock, so a chaos run
// that kills the primary at a random tick replays bit-identically.
package swarm

import (
	"fmt"

	"rfly/internal/geom"
)

// Topology selects which members of the mesh can donate a shadow to the
// serving cell, mirroring the relay-connectivity configurations of the
// multi-relay evaluation (MINIMAL / CROSS_ROW / ALL_CONNECT).
type Topology int

const (
	// TopoMinimal: only members stationed in the serving cell are
	// promotion candidates (MINIMAL connectivity).
	TopoMinimal Topology = iota
	// TopoCrossRow: the serving cell plus its adjacent cells can donate
	// (CROSS_ROW connectivity).
	TopoCrossRow
	// TopoAllConnect: any live member anywhere in the mesh can be
	// promoted (ALL_CONNECT connectivity).
	TopoAllConnect
)

// String implements fmt.Stringer.
func (t Topology) String() string {
	switch t {
	case TopoMinimal:
		return "minimal"
	case TopoCrossRow:
		return "cross-row"
	case TopoAllConnect:
		return "all-connect"
	default:
		return fmt.Sprintf("topology(%d)", int(t))
	}
}

// ParseTopology converts a string (as produced by String) to a Topology.
func ParseTopology(s string) (Topology, error) {
	for _, t := range []Topology{TopoMinimal, TopoCrossRow, TopoAllConnect} {
		if t.String() == s {
			return t, nil
		}
	}
	return 0, fmt.Errorf("swarm: unknown topology %q", s)
}

// Config shapes the fleet. The zero value disables the swarm entirely
// (single-relay missions are byte-identical to the pre-swarm engine).
type Config struct {
	// Relays is the fleet size; 0 disables the coordinator, 1 flies the
	// fleet machinery with no shadow to fail over to.
	Relays int
	// Cells is how many coverage cells the fleet spreads over (default 1).
	// Members are assigned round-robin; cell 0 is the serving cell, where
	// the mission's relay station is.
	Cells int
	// Topology bounds shadow donation across cells.
	Topology Topology
	// ColdSpares, when true, leaves shadows unlocked (cold standby): a
	// promoted spare must re-acquire the carrier before it serves, which
	// is exactly the latency the hot pre-lock buys back.
	ColdSpares bool
	// CellSpacingM is the distance between adjacent cell stations along
	// the corridor (default 8 m).
	CellSpacingM float64
}

// Enabled reports whether the config asks for a coordinated fleet.
func (c Config) Enabled() bool { return c.Relays > 0 }

// Defaults fills zero fields in place.
func (c *Config) Defaults() {
	if c.Cells <= 0 {
		c.Cells = 1
	}
	if c.CellSpacingM <= 0 {
		c.CellSpacingM = 8
	}
}

// Validate rejects unusable fleet shapes.
func (c Config) Validate() error {
	if c.Relays < 0 {
		return fmt.Errorf("swarm: negative fleet size %d", c.Relays)
	}
	if c.Topology < TopoMinimal || c.Topology > TopoAllConnect {
		return fmt.Errorf("swarm: unknown topology %d", int(c.Topology))
	}
	if c.Cells > c.Relays && c.Relays > 0 {
		return fmt.Errorf("swarm: %d cells cannot be covered by %d relays", c.Cells, c.Relays)
	}
	return nil
}

// MemberState is one fleet member's serializable state — everything a
// checkpoint must carry so a resumed mission rebuilds the same fleet.
type MemberState struct {
	// Cell is the coverage cell the member is stationed in.
	Cell int
	// Alive is false once the airframe is destroyed (RelayDeath); dead
	// members never come back, not even through a battery swap.
	Alive bool
	// Powered is the member's own supply rail (RelayBrownOut drops it).
	Powered bool
	// Locked/ReaderFreq/CFOHz mirror the member relay's carrier lock.
	Locked     bool
	ReaderFreq float64
	CFOHz      float64
	// Pos is the airframe's physical position.
	Pos geom.Point
}

// State is the coordinator's carryover: the election term, the current
// primary, and every member's state. It crosses sortie boundaries (and
// checkpoints) exactly like runtime.Carryover.
type State struct {
	// Term is the monotone election term; it never resets within a
	// mission, so re-elections across sorties stay ordered.
	Term uint64
	// Primary indexes Members.
	Primary int
	// Members is the fleet, index-aligned with member IDs.
	Members []MemberState
}

// LandAndSwap applies the between-sorties ground turnaround to the fleet:
// every surviving member gets a fresh battery (powered, but unlocked —
// PLLs lose state through a power cycle), while destroyed airframes stay
// gone. It mirrors what the engine's commit does for the single relay.
func (s *State) LandAndSwap() {
	for i := range s.Members {
		m := &s.Members[i]
		if !m.Alive {
			m.Powered = false
			m.Locked = false
			continue
		}
		if !m.Powered {
			m.Powered = true
			m.Locked = false
			m.ReaderFreq = 0
			m.CFOHz = 0
		}
	}
}

// HandoffRecord is the checkpoint event a mid-sortie failover emits: it
// snapshots where the SAR capture buffer stood when the shadow took
// over, so the zero-loss invariant (no capture sample dropped across the
// handoff) is checkable after the fact.
type HandoffRecord struct {
	// Term is the election term the promotion opened.
	Term uint64
	// FromID/ToID are the outgoing and incoming primaries' member IDs.
	FromID int
	ToID   int
	// Tick is the coordinator tick (sortie-relative) of the promotion.
	Tick int
	// SARCaptured is the capture-buffer length at the handoff.
	SARCaptured int
	// LatencyTicks is how many ticks the cell went unserved before the
	// promotion (0 = same-tick failover).
	LatencyTicks int
	// PreLocked records whether the incoming primary already held a
	// healthy carrier lock (a hot shadow) at promotion.
	PreLocked bool
}
