package tag

import (
	"math"
	"testing"
	"testing/quick"

	"rfly/internal/epc"
	"rfly/internal/geom"
	"rfly/internal/rng"
)

func newTestTag(seed uint64) *Tag {
	return New(epc.NewEPC96(0xE280, 1, 2, 3, 4, 5), geom.P2(1, 1), DefaultConfig(), rng.New(seed))
}

func TestPoweredBy(t *testing.T) {
	tg := newTestTag(1)
	if !tg.PoweredBy(-14, 0.9) {
		t.Fatal("-14 dBm should power the tag")
	}
	if tg.PoweredBy(-16, 0.9) {
		t.Fatal("-16 dBm should not power the tag")
	}
	if tg.PoweredBy(-10, 0.1) {
		t.Fatal("shallow modulation should not operate the tag")
	}
	if !tg.PoweredBy(-15, 0.25) {
		t.Fatal("threshold values should power the tag")
	}
}

func TestQuerySlotZeroReplies(t *testing.T) {
	tg := newTestTag(2)
	// Q=0 → 1 slot → always slot 0 → immediate RN16.
	r := tg.Handle(epc.Query{Q: 0})
	if r == nil || r.Kind != "rn16" || len(r.Bits) != 16 {
		t.Fatalf("reply = %+v", r)
	}
	if tg.State() != StateReply {
		t.Fatalf("state = %v", tg.State())
	}
	if uint16(bitsVal(t, r.Bits)) != tg.RN16() {
		t.Fatal("reply bits don't carry the RN16")
	}
}

func TestInventoryHandshake(t *testing.T) {
	tg := newTestTag(3)
	r := tg.Handle(epc.Query{Q: 0, Session: epc.S1})
	if r == nil {
		t.Fatal("no RN16")
	}
	ack := tg.Handle(epc.ACK{RN16: tg.RN16()})
	if ack == nil || ack.Kind != "epc" {
		t.Fatalf("ACK reply = %+v", ack)
	}
	got, err := epc.ParseTagReply(ack.Bits)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(tg.EPC) {
		t.Fatalf("EPC = %v", got)
	}
	if tg.State() != StateAcknowledged {
		t.Fatalf("state = %v", tg.State())
	}
	// QueryRep after acknowledge flips the session flag.
	if tg.Inventoried(epc.S1) {
		t.Fatal("inventoried before round advanced")
	}
	tg.Handle(epc.QueryRep{Session: epc.S1})
	if !tg.Inventoried(epc.S1) {
		t.Fatal("inventoried flag not flipped")
	}
	// Next A-target query: tag stays silent.
	if r := tg.Handle(epc.Query{Q: 0, Session: epc.S1}); r != nil {
		t.Fatal("inventoried tag replied to target-A query")
	}
	// B-target query re-engages it.
	if r := tg.Handle(epc.Query{Q: 0, Session: epc.S1, Target: epc.TargetB}); r == nil {
		t.Fatal("inventoried tag ignored target-B query")
	}
}

func TestWrongACKGoesToArbitrate(t *testing.T) {
	tg := newTestTag(4)
	tg.Handle(epc.Query{Q: 0})
	if r := tg.Handle(epc.ACK{RN16: tg.RN16() ^ 0xFFFF}); r != nil {
		t.Fatal("wrong-RN16 ACK got a reply")
	}
	if tg.State() != StateArbitrate {
		t.Fatalf("state = %v", tg.State())
	}
}

func TestACKIgnoredInReady(t *testing.T) {
	tg := newTestTag(5)
	if r := tg.Handle(epc.ACK{RN16: 1}); r != nil {
		t.Fatal("ready tag answered ACK")
	}
}

func TestQueryRepCountdown(t *testing.T) {
	// Find a seed where the first slot draw is ≥2 so we can watch the
	// countdown.
	for seed := uint64(0); seed < 200; seed++ {
		tg := newTestTag(seed)
		if tg.Handle(epc.Query{Q: 4}) != nil {
			continue // drew slot 0
		}
		if tg.State() != StateArbitrate {
			t.Fatalf("state = %v", tg.State())
		}
		reps := 0
		for tg.State() == StateArbitrate {
			r := tg.Handle(epc.QueryRep{})
			reps++
			if reps > 16 {
				t.Fatal("slot never reached zero")
			}
			if r != nil {
				if r.Kind != "rn16" {
					t.Fatalf("kind = %s", r.Kind)
				}
				return
			}
		}
		t.Fatalf("left arbitrate without replying")
	}
	t.Skip("no seed drew a nonzero slot (unlikely)")
}

func TestNAKReturnsToArbitrate(t *testing.T) {
	tg := newTestTag(6)
	tg.Handle(epc.Query{Q: 0})
	tg.Handle(epc.ACK{RN16: tg.RN16()})
	tg.Handle(epc.NAK{})
	if tg.State() != StateArbitrate {
		t.Fatalf("state after NAK = %v", tg.State())
	}
}

func TestReqRN(t *testing.T) {
	tg := newTestTag(7)
	tg.Handle(epc.Query{Q: 0})
	old := tg.RN16()
	tg.Handle(epc.ACK{RN16: old})
	r := tg.Handle(epc.ReqRN{RN16: old})
	if r == nil || r.Kind != "handle" {
		t.Fatalf("ReqRN reply = %+v", r)
	}
	if !epc.CheckCRC16(r.Bits) {
		t.Fatal("handle reply CRC invalid")
	}
	if tg.RN16() == old {
		t.Fatal("RN16 not refreshed")
	}
	// Wrong handle: silence.
	if r := tg.Handle(epc.ReqRN{RN16: tg.RN16() ^ 1}); r != nil {
		t.Fatal("wrong-handle ReqRN answered")
	}
}

func TestSelectMaskMatch(t *testing.T) {
	tg := newTestTag(8)
	mask := tg.EPC.Bits()[:16]
	// Gen2 action 0: match → inventoried←A (false); mismatch → B (true).
	bad := append(epc.Bits(nil), mask...)
	bad[0] ^= 1
	tg.Handle(epc.Select{Target: 2, Action: 0, MemBank: epc.BankEPC, Pointer: 0, Mask: bad})
	if !tg.Inventoried(epc.S2) {
		t.Fatal("non-matching select should set the flag to B")
	}
	tg.Handle(epc.Select{Target: 2, Action: 0, MemBank: epc.BankEPC, Pointer: 0, Mask: mask})
	if tg.Inventoried(epc.S2) {
		t.Fatal("matching select should return the flag to A")
	}
	// Action ≥4 complements: a match sets B.
	tg.Handle(epc.Select{Target: 2, Action: 4, MemBank: epc.BankEPC, Pointer: 0, Mask: mask})
	if !tg.Inventoried(epc.S2) {
		t.Fatal("complement select did not set B on match")
	}
	tg.ClearInventory()
	// TID-bank selects are not modelled and never match → flag set to B.
	tg.Handle(epc.Select{Target: 2, Action: 0, MemBank: epc.BankTID, Pointer: 0, Mask: mask})
	if !tg.Inventoried(epc.S2) {
		t.Fatal("TID select should behave as a mismatch")
	}
	tg.ClearInventory()
	// Out-of-range pointer never matches → mismatch behaviour.
	tg.Handle(epc.Select{Target: 2, Action: 0, MemBank: epc.BankEPC, Pointer: 90, Mask: mask})
	if !tg.Inventoried(epc.S2) {
		t.Fatal("out-of-range select should behave as a mismatch")
	}
	// SL-flag select (target 4) leaves inventoried untouched.
	tg.ClearInventory()
	tg.Handle(epc.Select{Target: 4, Action: 0, MemBank: epc.BankEPC, Pointer: 0, Mask: mask})
	if tg.Inventoried(epc.S0) || tg.Inventoried(epc.S2) {
		t.Fatal("SL select touched inventoried flags")
	}
}

func TestQueryAdjust(t *testing.T) {
	for seed := uint64(0); seed < 300; seed++ {
		tg := newTestTag(seed)
		if tg.Handle(epc.Query{Q: 4}) != nil {
			continue // want an arbitrating tag
		}
		// Drive Q down to zero: the redraw must eventually hit slot 0.
		for i := 0; i < 4; i++ {
			tg.Handle(epc.QueryAdjust{UpDn: -1})
		}
		r := tg.Handle(epc.QueryAdjust{UpDn: 0}) // Q now 0 → slot 0 → reply
		if r == nil {
			t.Fatalf("seed %d: QueryAdjust to Q=0 did not elicit a reply", seed)
		}
		return
	}
	t.Skip("no arbitrating seed found")
}

func TestClearInventory(t *testing.T) {
	tg := newTestTag(9)
	tg.Handle(epc.Query{Q: 0, Session: epc.S0})
	tg.Handle(epc.ACK{RN16: tg.RN16()})
	tg.Handle(epc.QueryRep{Session: epc.S0})
	if !tg.Inventoried(epc.S0) {
		t.Fatal("not inventoried")
	}
	tg.ClearInventory()
	if tg.Inventoried(epc.S0) || tg.State() != StateReady {
		t.Fatal("ClearInventory incomplete")
	}
}

func TestStateString(t *testing.T) {
	names := map[State]string{
		StateReady: "ready", StateArbitrate: "arbitrate",
		StateReply: "reply", StateAcknowledged: "acknowledged",
	}
	for s, want := range names {
		if s.String() != want {
			t.Fatalf("%v", s)
		}
	}
	if State(99).String() != "state(99)" {
		t.Fatal("unknown state string")
	}
}

func TestBackscatterWaveform(t *testing.T) {
	tg := newTestTag(10)
	r := tg.Handle(epc.Query{Q: 0})
	chips := tg.BackscatterChips(r)
	wf := Waveform(chips, tg.Cfg.BackscatterCoeff, 4e6, 500e3)
	spc := epc.SamplesPerChip(4e6, 500e3)
	if len(wf) != len(chips)*spc {
		t.Fatalf("waveform length = %d", len(wf))
	}
	// Amplitude is ±coeff/2.
	want := tg.Cfg.BackscatterCoeff / 2
	for i, v := range wf {
		if r, im := real(v), imag(v); im != 0 || (r != want && r != -want) {
			t.Fatalf("sample %d = %v", i, v)
		}
	}
}

func TestResetKeepsFlags(t *testing.T) {
	tg := newTestTag(11)
	tg.Handle(epc.Query{Q: 0, Session: epc.S3})
	tg.Handle(epc.ACK{RN16: tg.RN16()})
	tg.Handle(epc.QueryRep{Session: epc.S3})
	tg.Reset()
	if !tg.Inventoried(epc.S3) {
		t.Fatal("Reset cleared session flags")
	}
	if tg.State() != StateReady {
		t.Fatal("Reset did not return to ready")
	}
}

func TestOrientationLoss(t *testing.T) {
	tg := newTestTag(90)
	tg.Pos = geom.P2(0, 0)
	// Isotropic default: no loss.
	if l := tg.OrientationLossDB(geom.P2(5, 0)); l != 0 {
		t.Fatalf("isotropic loss = %v", l)
	}
	// Dipole along X, wave arriving along X (end-on): deep null at the
	// -30 dB floor.
	tg.Orientation = geom.V(1, 0, 0)
	if l := tg.OrientationLossDB(geom.P2(5, 0)); l < 29.9 || l > 30.1 {
		t.Fatalf("end-on loss = %v, want 30", l)
	}
	// Broadside (arrival perpendicular to the axis): no loss.
	if l := tg.OrientationLossDB(geom.P2(0, 5)); l > 1e-9 {
		t.Fatalf("broadside loss = %v", l)
	}
	// 45°: sin²=1/2 → 3 dB.
	if l := tg.OrientationLossDB(geom.P2(5, 5)); l < 2.9 || l > 3.2 {
		t.Fatalf("45° loss = %v, want ≈3", l)
	}
}

func TestOrientationBlindSpotPerspective(t *testing.T) {
	// The §5.2 claim: a mobile relay sees a misoriented tag from some
	// angle even when a fixed reader sits in its null. Pure geometry here;
	// the budget integration is exercised in internal/sim.
	tg := newTestTag(91)
	tg.Pos = geom.P2(10, 0)
	tg.Orientation = geom.V(1, 0, 0) // null toward the origin
	fixedLoss := tg.OrientationLossDB(geom.P2(0, 0))
	if fixedLoss < 29 {
		t.Fatalf("fixed reader not in the null: %v dB", fixedLoss)
	}
	best := fixedLoss
	for _, y := range []float64{-3, -1, 1, 3} {
		if l := tg.OrientationLossDB(geom.P(10, y, 1.2)); l < best {
			best = l
		}
	}
	if best > 1 {
		t.Fatalf("no drone perspective escapes the null: best %v dB", best)
	}
}

func TestOrientationLossProperties(t *testing.T) {
	prop := func(ax8, ay8, az8, fx8, fy8 int8) bool {
		axis := geom.Vec{X: float64(ax8) / 16, Y: float64(ay8) / 16, Z: float64(az8) / 16}
		from := geom.P(float64(fx8)/8, float64(fy8)/8, 0)
		tg := New(epc.NewEPC96(1, 1, 1, 1, 1, 1), geom.P(2, 3, 0.5), DefaultConfig(), rng.New(1))
		tg.Orientation = axis
		loss := tg.OrientationLossDB(from)
		// Bounded: broadside 0 dB, end-fire capped by the cross-pol floor.
		if loss < -1e-9 || loss > 30.01 {
			return false
		}
		// Scaling the axis must not change the loss (it is a direction).
		tg.Orientation = axis.Scale(3)
		if l2 := tg.OrientationLossDB(from); math.Abs(l2-loss) > 1e-9 {
			return false
		}
		// Observing from the mirror side sees the same dipole pattern.
		mirror := geom.P(2*tg.Pos.X-from.X, 2*tg.Pos.Y-from.Y, 2*tg.Pos.Z-from.Z)
		return math.Abs(tg.OrientationLossDB(mirror)-loss) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
