// Package tag models passive UHF RFID tags: power harvesting with the
// −15 dBm sensitivity of off-the-shelf tags (§2), the EPC Gen2 inventory
// state machine, RN16 generation, and backscatter waveform synthesis by
// impedance switching.
//
// A tag is a purely reactive device: it never transmits, it only modulates
// the reflection of whatever carrier illuminates it, which is why the
// relay's downlink must deliver both power and modulation depth (§4.3).
package tag

import (
	"fmt"
	"math"

	"rfly/internal/epc"
	"rfly/internal/geom"
	"rfly/internal/rng"
)

// State is the Gen2 inventory state of a tag.
type State uint8

// Gen2 states (the subset the inventory flow exercises).
const (
	StateReady State = iota
	StateArbitrate
	StateReply
	StateAcknowledged
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StateReady:
		return "ready"
	case StateArbitrate:
		return "arbitrate"
	case StateReply:
		return "reply"
	case StateAcknowledged:
		return "acknowledged"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// Config holds a tag's RF characteristics. Defaults model the Alien
// Squiggle general-purpose inlay used in the paper.
type Config struct {
	// SensitivityDBm is the minimum received power that powers the chip
	// up; −15 dBm for current-generation passive tags (§2).
	SensitivityDBm float64
	// MinModulationDepth is the minimum downlink envelope depth the chip
	// can slice commands from.
	MinModulationDepth float64
	// BackscatterCoeff is the amplitude of the reflected signal's
	// modulated component relative to the incident carrier (differential
	// radar cross-section, amplitude domain).
	BackscatterCoeff float64
}

// DefaultConfig returns the Alien-Squiggle-like tag characteristics.
func DefaultConfig() Config {
	return Config{
		SensitivityDBm:     -15,
		MinModulationDepth: 0.25,
		BackscatterCoeff:   0.33,
	}
}

// Tag is one passive RFID tag.
type Tag struct {
	EPC epc.EPC
	Pos geom.Point
	Cfg Config
	Mem Memory
	// Orientation is the tag dipole's axis. A dipole couples nothing
	// along its own axis — the §1 "orientation misalignment" blind-spot
	// cause. The zero vector means an ideal isotropic tag (orientation
	// effects disabled).
	Orientation geom.Vec

	state       State
	slot        int
	lastQ       uint8
	rn16        uint16
	coverRN     uint16
	handled     bool
	trext       bool
	killed      bool
	lockedUser  bool
	killPending int // 0 = none, 1 = upper half verified
	sl          bool
	inventoried [4]bool // per session S0..S3

	src *rng.Source
}

// New returns a tag with the given EPC at pos, drawing randomness (slot
// counters, RN16s) from src.
func New(e epc.EPC, pos geom.Point, cfg Config, src *rng.Source) *Tag {
	return &Tag{EPC: e, Pos: pos, Cfg: cfg, Mem: DefaultMemory(e), src: src}
}

// State returns the tag's current inventory state.
func (t *Tag) State() State { return t.state }

// RN16 returns the tag's current handle (valid in Reply/Acknowledged).
func (t *Tag) RN16() uint16 { return t.rn16 }

// PoweredBy reports whether incident power rxDBm with downlink envelope
// depth depth is sufficient to operate the chip.
func (t *Tag) PoweredBy(rxDBm, depth float64) bool {
	return rxDBm >= t.Cfg.SensitivityDBm && depth >= t.Cfg.MinModulationDepth
}

// OrientationLossDB returns the polarization/pattern loss for a wave
// arriving from the given source position: a dipole's gain goes as
// sin²(ψ), ψ the angle between its axis and the arrival direction, so
// end-on illumination is a deep null. Isotropic tags (zero Orientation)
// lose nothing.
func (t *Tag) OrientationLossDB(from geom.Point) float64 {
	axis := t.Orientation
	if axis == (geom.Vec{}) {
		return 0
	}
	dir := t.Pos.Sub(from)
	dn, an := dir.Norm(), axis.Norm()
	if dn == 0 || an == 0 {
		return 0
	}
	cosPsi := dir.Dot(axis) / (dn * an)
	sin2 := 1 - cosPsi*cosPsi
	const floor = 1e-3 // −30 dB cross-pol floor: no practical null is perfect
	if sin2 < floor {
		sin2 = floor
	}
	return -10 * math.Log10(sin2)
}

// Reset returns the tag to Ready without clearing inventoried flags (i.e.
// a power cycle between rounds; Gen2 S1–S3 flags persist briefly, S0
// resets — the simulation keeps all flags for simplicity unless
// ClearInventory is called).
func (t *Tag) Reset() { t.state = StateReady }

// ClearInventory clears every session's inventoried flag and the SL flag.
func (t *Tag) ClearInventory() {
	t.inventoried = [4]bool{}
	t.sl = false
	t.state = StateReady
}

// Inventoried reports the session's inventoried flag.
func (t *Tag) Inventoried(s epc.Session) bool { return t.inventoried[s&3] }

// Reply is what a tag backscatters in response to a command.
type Reply struct {
	Bits epc.Bits
	// Kind describes the reply for diagnostics: "rn16" or "epc".
	Kind string
}

// Handle runs one reader command through the tag's state machine and
// returns the tag's backscattered reply, if any. The caller is
// responsible for only invoking Handle when the tag is powered (see
// PoweredBy); an unpowered tag is simply absent from the protocol.
func (t *Tag) Handle(cmd epc.Command) *Reply {
	if t.killed {
		return nil // a killed tag is permanently silent (§6.3.2.12.3.5)
	}
	switch c := cmd.(type) {
	case epc.Select:
		t.handleSelect(c)
		return nil
	case epc.Query:
		return t.handleQuery(c)
	case epc.QueryAdjust:
		// A new round with Q adjusted from the last Query's value; tags in
		// arbitrate or reply redraw their slots.
		if t.state != StateArbitrate && t.state != StateReply {
			return nil
		}
		switch {
		case c.UpDn > 0 && t.lastQ < 15:
			t.lastQ++
		case c.UpDn < 0 && t.lastQ > 0:
			t.lastQ--
		}
		t.slot = t.src.Intn(1 << t.lastQ)
		if t.slot == 0 {
			t.rn16 = t.src.Uint16()
			t.state = StateReply
			return &Reply{Bits: epc.BitsFromUint(uint64(t.rn16), 16), Kind: "rn16"}
		}
		t.state = StateArbitrate
		return nil
	case epc.QueryRep:
		return t.handleQueryRep(c)
	case epc.ACK:
		return t.handleACK(c)
	case epc.NAK:
		if t.state == StateReply || t.state == StateAcknowledged {
			t.state = StateArbitrate
		}
		return nil
	case epc.ReqRN:
		if t.state == StateAcknowledged && c.RN16 == t.rn16 {
			// First ReqRN establishes the handle; subsequent ones (with the
			// handle) issue cover RN16s for write cover-coding.
			if !t.handled {
				t.rn16 = t.src.Uint16()
				t.handled = true
				b := epc.BitsFromUint(uint64(t.rn16), 16)
				return &Reply{Bits: b.Append(epc.CRC16(b)), Kind: "handle"}
			}
			t.coverRN = t.src.Uint16()
			b := epc.BitsFromUint(uint64(t.coverRN), 16)
			return &Reply{Bits: b.Append(epc.CRC16(b)), Kind: "cover-rn"}
		}
		return nil
	case epc.Read:
		return t.handleRead(c)
	case epc.Write:
		return t.handleWrite(c)
	case epc.Kill:
		return t.handleKill(c)
	case epc.Lock:
		return t.handleLock(c)
	default:
		return nil
	}
}

func (t *Tag) handleSelect(c epc.Select) {
	match := t.maskMatches(c)
	// Action semantics (simplified Gen2 table 6.20): action 0 asserts SL
	// (or sets inventoried→A) on match and deasserts on mismatch; action 4
	// is the complement.
	assert := match
	if c.Action >= 4 {
		assert = !match
	}
	if c.Target == 4 { // SL flag
		t.sl = assert
	} else { // inventoried flag for session Target&3: assert = set to A (false)
		t.inventoried[c.Target&3] = !assert
	}
	t.state = StateReady
}

func (t *Tag) maskMatches(c epc.Select) bool {
	if c.MemBank != epc.BankEPC {
		return false // only EPC-bank selects are modelled
	}
	bits := t.EPC.Bits()
	start := int(c.Pointer)
	if start+len(c.Mask) > len(bits) {
		return false
	}
	return epc.Bits(bits[start : start+len(c.Mask)]).Equal(c.Mask)
}

func (t *Tag) handleQuery(c epc.Query) *Reply {
	t.handled = false
	t.trext = c.TRext
	// Participate only if our inventoried flag matches the query target.
	inv := t.inventoried[c.Session&3]
	wantB := c.Target == epc.TargetB
	if inv != wantB {
		t.state = StateReady
		return nil
	}
	t.lastQ = c.Q & 0xF
	t.slot = t.src.Intn(1 << t.lastQ)
	if t.slot == 0 {
		t.rn16 = t.src.Uint16()
		t.state = StateReply
		return &Reply{Bits: epc.BitsFromUint(uint64(t.rn16), 16), Kind: "rn16"}
	}
	t.state = StateArbitrate
	return nil
}

func (t *Tag) handleQueryRep(c epc.QueryRep) *Reply {
	switch t.state {
	case StateAcknowledged:
		// Round advances past an acknowledged tag: flip inventoried.
		t.inventoried[c.Session&3] = !t.inventoried[c.Session&3]
		t.state = StateReady
		return nil
	case StateArbitrate:
		t.slot--
		if t.slot <= 0 {
			t.rn16 = t.src.Uint16()
			t.state = StateReply
			return &Reply{Bits: epc.BitsFromUint(uint64(t.rn16), 16), Kind: "rn16"}
		}
		return nil
	case StateReply:
		// Replied but never acknowledged (collision or missed RN16): back
		// to arbitrate. Per Gen2 §6.3.2.4 the slot counter, decremented
		// past zero, wraps to 0x7FFF — the tag stays silent for the rest
		// of the round and rejoins at the next Query/QueryAdjust.
		t.state = StateArbitrate
		t.slot = 0x7FFF
		return nil
	default:
		return nil
	}
}

func (t *Tag) handleACK(c epc.ACK) *Reply {
	if t.state != StateReply && t.state != StateAcknowledged {
		return nil
	}
	if c.RN16 != t.rn16 {
		// Wrong handle (e.g. we lost a captured collision): arbitrate with
		// the slot counter wrapped, silent until the next round.
		t.state = StateArbitrate
		t.slot = 0x7FFF
		return nil
	}
	t.state = StateAcknowledged
	return &Reply{Bits: epc.TagReply(t.EPC), Kind: "epc"}
}

// BackscatterChips FM0-encodes a reply into ±1 chips ready for waveform
// synthesis. The encoding honors the TRext bit of the round's Query: at
// low SNR readers request the pilot-extended preamble (§6.3.1.3.2).
func (t *Tag) BackscatterChips(r *Reply) []int8 {
	if t.trext {
		return epc.FM0EncodeExt(r.Bits)
	}
	return epc.FM0Encode(r.Bits)
}

// TRext reports whether the last Query requested extended preambles.
func (t *Tag) TRext() bool { return t.trext }

// Waveform renders chips as the tag's baseband reflection modulation at
// sample rate fs and backscatter link frequency blf: a ±coeff/2 square
// wave (AC component of the impedance switching; the DC term is the static
// reflection the reader's carrier cancellation removes).
func Waveform(chips []int8, coeff, fs, blf float64) []complex128 {
	spc := epc.SamplesPerChip(fs, blf)
	out := make([]complex128, 0, len(chips)*spc)
	amp := coeff / 2
	for _, c := range chips {
		v := complex(amp*float64(c), 0)
		for k := 0; k < spc; k++ {
			out = append(out, v)
		}
	}
	return out
}

// SetKillPassword stores a 32-bit kill password in reserved memory.
func (t *Tag) SetKillPassword(pw uint32) {
	if len(t.Mem.Reserved) < 2 {
		t.Mem.Reserved = make([]uint16, 4)
	}
	t.Mem.Reserved[0] = uint16(pw >> 16)
	t.Mem.Reserved[1] = uint16(pw)
}

// Killed reports whether the tag has been permanently silenced.
func (t *Tag) Killed() bool { return t.killed }

// UserLocked reports whether user-memory writes are disabled.
func (t *Tag) UserLocked() bool { return t.lockedUser }

// handleKill processes one half of the two-step kill: each half arrives
// cover-coded with the RN16 from the preceding ReqRN. A zero stored
// password makes the tag unkillable.
func (t *Tag) handleKill(c epc.Kill) *Reply {
	if t.state != StateAcknowledged || c.RN16 != t.rn16 {
		t.killPending = 0
		return nil
	}
	pw := t.Mem.KillPassword()
	if pw == 0 {
		t.killPending = 0
		return nil // unkillable
	}
	plain := c.Password ^ t.coverRN
	switch c.Half {
	case 0:
		if plain == uint16(pw>>16) {
			t.killPending = 1
			b := epc.BitsFromUint(uint64(t.rn16), 16)
			return &Reply{Bits: b.Append(epc.CRC16(b)), Kind: "kill-ack"}
		}
		t.killPending = 0
		return nil
	default:
		if t.killPending == 1 && plain == uint16(pw) {
			t.killed = true
			b := epc.BitsFromUint(uint64(t.rn16), 16)
			return &Reply{Bits: b.Append(epc.CRC16(b)), Kind: "killed"}
		}
		t.killPending = 0
		return nil
	}
}

// handleLock toggles user-memory write protection.
func (t *Tag) handleLock(c epc.Lock) *Reply {
	if t.state != StateAcknowledged || c.RN16 != t.rn16 {
		return nil
	}
	if c.MemBank != epc.BankUser {
		return nil // only the user bank's lock is modelled
	}
	t.lockedUser = c.Locked
	b := epc.BitsFromUint(uint64(t.rn16), 16)
	return &Reply{Bits: b.Append(epc.CRC16(b)), Kind: "lock"}
}

// PowerCycle models the chip browning out as the relay moves away: the
// state machine resets and the S0 inventoried flag (which only persists
// while powered, §6.3.2.2) clears; S1–S3 flags persist briefly and are
// retained here.
func (t *Tag) PowerCycle() {
	t.state = StateReady
	t.handled = false
	t.killPending = 0
	t.inventoried[epc.S0] = false
}
