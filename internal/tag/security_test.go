package tag

import (
	"testing"

	"rfly/internal/epc"
)

// coverRN drives a second ReqRN and returns the issued cover RN16.
func coverRN(t *testing.T, tg *Tag) uint16 {
	t.Helper()
	r := tg.Handle(epc.ReqRN{RN16: tg.RN16()})
	if r == nil || r.Kind != "cover-rn" {
		t.Fatalf("cover ReqRN reply %+v", r)
	}
	return uint16(bitsVal(t, r.Bits[:16]))
}

func TestKillTwoStep(t *testing.T) {
	tg := tagForSeed(40)
	tg.SetKillPassword(0xDEADBEEF)
	handle := handshake(t, tg)
	// Half 0 (upper 16 bits), cover-coded.
	c1 := coverRN(t, tg)
	r := tg.Handle(epc.Kill{Half: 0, Password: 0xDEAD ^ c1, RN16: handle})
	if r == nil || r.Kind != "kill-ack" {
		t.Fatalf("kill half 0 reply %+v", r)
	}
	if tg.Killed() {
		t.Fatal("killed after only one half")
	}
	// Half 1.
	c2 := coverRN(t, tg)
	r = tg.Handle(epc.Kill{Half: 1, Password: 0xBEEF ^ c2, RN16: handle})
	if r == nil || r.Kind != "killed" {
		t.Fatalf("kill half 1 reply %+v", r)
	}
	if !tg.Killed() {
		t.Fatal("tag survived a correct kill")
	}
	// A killed tag is silent forever.
	if rep := tg.Handle(epc.Query{Q: 0}); rep != nil {
		t.Fatal("killed tag answered a query")
	}
	if rep := tg.Handle(epc.Select{MemBank: epc.BankEPC}); rep != nil {
		t.Fatal("killed tag processed a select")
	}
}

func TestKillWrongPassword(t *testing.T) {
	tg := tagForSeed(41)
	tg.SetKillPassword(0x12345678)
	handle := handshake(t, tg)
	c1 := coverRN(t, tg)
	if r := tg.Handle(epc.Kill{Half: 0, Password: 0xFFFF ^ c1, RN16: handle}); r != nil {
		t.Fatal("wrong upper half acknowledged")
	}
	// Even a correct second half must not kill after a failed first.
	c2 := coverRN(t, tg)
	if r := tg.Handle(epc.Kill{Half: 1, Password: 0x5678 ^ c2, RN16: handle}); r != nil {
		t.Fatal("second half accepted without a verified first")
	}
	if tg.Killed() {
		t.Fatal("tag died to a wrong password")
	}
}

func TestZeroPasswordUnkillable(t *testing.T) {
	tg := tagForSeed(42)
	handle := handshake(t, tg)
	c1 := coverRN(t, tg)
	if r := tg.Handle(epc.Kill{Half: 0, Password: 0x0000 ^ c1, RN16: handle}); r != nil {
		t.Fatal("zero-password tag acknowledged a kill half")
	}
	if tg.Killed() {
		t.Fatal("zero-password tag killed")
	}
}

func TestKillRequiresHandle(t *testing.T) {
	tg := tagForSeed(43)
	tg.SetKillPassword(1)
	if r := tg.Handle(epc.Kill{Half: 0, Password: 0, RN16: 99}); r != nil {
		t.Fatal("un-handled kill accepted")
	}
}

func TestLockUserBank(t *testing.T) {
	tg := tagForSeed(44)
	handle := handshake(t, tg)
	// Write works before locking.
	cov := coverRN(t, tg)
	if r := tg.Handle(epc.Write{MemBank: epc.BankUser, WordPtr: 1, Data: 0x1111 ^ cov, RN16: handle}); r == nil {
		t.Fatal("pre-lock write refused")
	}
	// Lock.
	if r := tg.Handle(epc.Lock{MemBank: epc.BankUser, Locked: true, RN16: handle}); r == nil || r.Kind != "lock" {
		t.Fatalf("lock reply %+v", r)
	}
	if !tg.UserLocked() {
		t.Fatal("lock flag not set")
	}
	// Writes now refused; reads still work.
	cov = coverRN(t, tg)
	if r := tg.Handle(epc.Write{MemBank: epc.BankUser, WordPtr: 1, Data: 0x2222 ^ cov, RN16: handle}); r != nil {
		t.Fatal("locked bank accepted a write")
	}
	if tg.Mem.User[1] != 0x1111 {
		t.Fatalf("locked memory changed: %04X", tg.Mem.User[1])
	}
	if r := tg.Handle(epc.Read{MemBank: epc.BankUser, WordPtr: 1, WordCount: 1, RN16: tg.RN16()}); r == nil {
		t.Fatal("locked bank refused a read")
	}
	// Unlock restores writes.
	tg.Handle(epc.Lock{MemBank: epc.BankUser, Locked: false, RN16: tg.RN16()})
	cov = coverRN(t, tg)
	if r := tg.Handle(epc.Write{MemBank: epc.BankUser, WordPtr: 1, Data: 0x3333 ^ cov, RN16: tg.RN16()}); r == nil {
		t.Fatal("unlock did not restore writes")
	}
}

func TestReservedBankNeverReadable(t *testing.T) {
	tg := tagForSeed(45)
	tg.SetKillPassword(0xAABBCCDD)
	handle := handshake(t, tg)
	if r := tg.Handle(epc.Read{MemBank: epc.BankRFU, WordPtr: 0, WordCount: 2, RN16: handle}); r != nil {
		t.Fatal("reserved bank read over the air")
	}
}

func TestPowerCycleSemantics(t *testing.T) {
	tg := tagForSeed(46)
	// Inventory in S0 and S2.
	for _, sess := range []epc.Session{epc.S0, epc.S2} {
		tg.Handle(epc.Query{Q: 0, Session: sess})
		tg.Handle(epc.ACK{RN16: tg.RN16()})
		tg.Handle(epc.QueryRep{Session: sess})
	}
	if !tg.Inventoried(epc.S0) || !tg.Inventoried(epc.S2) {
		t.Fatal("setup failed")
	}
	tg.PowerCycle()
	if tg.Inventoried(epc.S0) {
		t.Fatal("S0 flag survived a power cycle")
	}
	if !tg.Inventoried(epc.S2) {
		t.Fatal("S2 flag lost on a power cycle")
	}
	if tg.State() != StateReady {
		t.Fatalf("state after power cycle: %v", tg.State())
	}
	// A killed tag stays dead through power cycles.
	tg.SetKillPassword(0xCAFE0001)
	h := handshake(t, tg)
	c1 := coverRN(t, tg)
	tg.Handle(epc.Kill{Half: 0, Password: 0xCAFE ^ c1, RN16: h})
	c2 := coverRN(t, tg)
	tg.Handle(epc.Kill{Half: 1, Password: 0x0001 ^ c2, RN16: h})
	if !tg.Killed() {
		t.Fatal("kill failed")
	}
	tg.PowerCycle()
	if !tg.Killed() {
		t.Fatal("power cycle resurrected a killed tag")
	}
}

func TestKillLockCommandCodecs(t *testing.T) {
	k := epc.Kill{Half: 1, Password: 0xABCD, RN16: 0x1234}
	cmd, err := epc.Decode(k.Bits())
	if err != nil {
		t.Fatal(err)
	}
	if got := cmd.(epc.Kill); got != k {
		t.Fatalf("Kill round trip %+v", got)
	}
	l := epc.Lock{MemBank: epc.BankUser, Locked: true, RN16: 0x9876}
	cmd, err = epc.Decode(l.Bits())
	if err != nil {
		t.Fatal(err)
	}
	if got := cmd.(epc.Lock); got != l {
		t.Fatalf("Lock round trip %+v", got)
	}
	// Corruption detected.
	bad := k.Bits()
	bad[20] ^= 1
	if _, err := epc.Decode(bad); err == nil {
		t.Fatal("corrupted Kill decoded")
	}
}
