package tag

// Property-based tests of the Gen2 state machine: arbitrary command
// sequences must never put a tag into an illegal state, elicit a reply
// from a silent state, or corrupt its memory.

import (
	"testing"
	"testing/quick"

	"rfly/internal/epc"
	"rfly/internal/geom"
	"rfly/internal/rng"
)

// randomCommand maps a byte stream to a Gen2 command.
func randomCommand(sel byte, arg uint16, src *rng.Source) epc.Command {
	switch sel % 8 {
	case 0:
		return epc.Query{Q: uint8(arg % 4), Session: epc.Session(arg % 4)}
	case 1:
		return epc.QueryRep{Session: epc.Session(arg % 4)}
	case 2:
		return epc.QueryAdjust{Session: epc.Session(arg % 4), UpDn: int(arg%3) - 1}
	case 3:
		return epc.ACK{RN16: arg}
	case 4:
		return epc.NAK{}
	case 5:
		return epc.ReqRN{RN16: arg}
	case 6:
		return epc.Read{MemBank: epc.MemBank(arg % 4), WordPtr: uint32(arg % 16), WordCount: uint8(arg % 8), RN16: arg}
	default:
		return epc.Write{MemBank: epc.MemBank(arg % 4), WordPtr: uint32(arg % 16), Data: arg, RN16: arg ^ 0x5555}
	}
}

func TestTagStateMachineNeverPanicsOrCorrupts(t *testing.T) {
	f := func(seed uint64, sels []byte, args []uint16) bool {
		src := rng.New(seed)
		tg := New(epc.NewEPC96(0xE280, 1, 2, 3, 4, 5), geom.P2(0, 0), DefaultConfig(), src)
		epcBefore := tg.EPC.String()
		tidBefore := append([]uint16(nil), tg.Mem.TID...)
		n := len(sels)
		if len(args) < n {
			n = len(args)
		}
		for i := 0; i < n && i < 200; i++ {
			cmd := randomCommand(sels[i], args[i], src)
			rep := tg.Handle(cmd)
			// Invariant 1: the state is always one of the four legal ones.
			switch tg.State() {
			case StateReady, StateArbitrate, StateReply, StateAcknowledged:
			default:
				return false
			}
			// Invariant 2: replies only come from commands that can elicit
			// them (Select and NAK are always silent).
			switch cmd.(type) {
			case epc.Select, epc.NAK:
				if rep != nil {
					return false
				}
			}
			// Invariant 3: any reply carries at least 16 bits.
			if rep != nil && len(rep.Bits) < 16 {
				return false
			}
		}
		// Invariant 4: EPC and TID are immutable under any sequence.
		if tg.EPC.String() != epcBefore {
			return false
		}
		for i, w := range tg.Mem.TID {
			if tidBefore[i] != w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestTagEPCReplyOnlyAfterMatchingACK(t *testing.T) {
	// Property: the only way to extract a PC+EPC reply is an ACK carrying
	// the exact RN16 the tag last issued.
	f := func(seed uint64, wrongRN uint16) bool {
		src := rng.New(seed)
		tg := New(epc.NewEPC96(1, 2, 3, 4, 5, 6), geom.P2(0, 0), DefaultConfig(), src)
		if tg.Handle(epc.Query{Q: 0}) == nil {
			return false
		}
		right := tg.RN16()
		if wrongRN == right {
			wrongRN ^= 1
		}
		if rep := tg.Handle(epc.ACK{RN16: wrongRN}); rep != nil {
			return false // wrong RN16 must never yield the EPC
		}
		// After the failed ACK the tag is in arbitrate; a correct ACK now
		// must also fail (the spec: ACK only valid in reply/acknowledged).
		if tg.State() != StateArbitrate {
			return false
		}
		return tg.Handle(epc.ACK{RN16: right}) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestTagInventoriedFlagMonotoneWithinRound(t *testing.T) {
	// Within one A-target round, a tag's inventoried flag flips at most
	// once (when its handshake completes), never back.
	f := func(seed uint64) bool {
		src := rng.New(seed)
		tg := New(epc.NewEPC96(9, 9, 9, 9, 9, 9), geom.P2(0, 0), DefaultConfig(), src)
		tg.Handle(epc.Query{Q: 2, Session: epc.S1})
		flips := 0
		prev := tg.Inventoried(epc.S1)
		for i := 0; i < 8; i++ {
			if tg.State() == StateReply {
				tg.Handle(epc.ACK{RN16: tg.RN16()})
			}
			tg.Handle(epc.QueryRep{Session: epc.S1})
			if cur := tg.Inventoried(epc.S1); cur != prev {
				flips++
				prev = cur
			}
		}
		return flips <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
