package tag

import "rfly/internal/epc"

// Gen2 memory model (§6.3.2.1): four banks of 16-bit words. The EPC bank
// mirrors the tag's EPC; TID carries the chip identity; User is free
// storage the warehouse workflows read item metadata from.

// Memory is a tag's addressable storage.
type Memory struct {
	// Reserved holds the kill password (words 0–1) and access password
	// (words 2–3). A zero kill password makes the tag unkillable (§6.3.2.1).
	Reserved []uint16
	TID      []uint16
	User     []uint16
}

// KillPassword returns the 32-bit kill password.
func (m Memory) KillPassword() uint32 {
	if len(m.Reserved) < 2 {
		return 0
	}
	return uint32(m.Reserved[0])<<16 | uint32(m.Reserved[1])
}

// DefaultMemory derives a TID from the EPC (a stable pseudo-identity, as
// real chips burn a serial at manufacture) and allocates 8 user words.
func DefaultMemory(e epc.EPC) Memory {
	tid := []uint16{0xE200, 0x3412} // class identifier + vendor, Alien-like
	var acc uint16
	for _, w := range e.Words {
		acc = acc*31 + w
	}
	tid = append(tid, acc, acc^0xFFFF)
	return Memory{Reserved: make([]uint16, 4), TID: tid, User: make([]uint16, 8)}
}

// bank resolves a bank selector to the backing slice; the EPC bank is the
// PC+EPC layout (simplified to the raw EPC words here).
func (t *Tag) bank(b epc.MemBank) []uint16 {
	switch b {
	case epc.BankRFU:
		return nil // reserved bank is never readable over the air
	case epc.BankEPC:
		return t.EPC.Words
	case epc.BankTID:
		return t.Mem.TID
	case epc.BankUser:
		return t.Mem.User
	default:
		return nil
	}
}

// handleRead serves a Read command: the tag must hold the matching handle
// (it was acknowledged and the reader requested its handle via ReqRN).
func (t *Tag) handleRead(c epc.Read) *Reply {
	if t.state != StateAcknowledged || c.RN16 != t.rn16 {
		return nil
	}
	bank := t.bank(c.MemBank)
	if bank == nil {
		return nil
	}
	start := int(c.WordPtr)
	count := int(c.WordCount)
	if count == 0 {
		count = len(bank) - start
	}
	if start < 0 || count <= 0 || start+count > len(bank) {
		return nil // a real tag backscatters an error code; silence suffices here
	}
	words := make([]uint16, count)
	copy(words, bank[start:start+count])
	return &Reply{Bits: epc.ReadReply(words, t.rn16), Kind: "read"}
}

// handleWrite serves a Write command: the data word arrives cover-coded
// with the RN16 the tag issued on the most recent ReqRN (§6.3.2.12.3.4),
// so the tag XORs it back before storing. Only the User bank is writable.
func (t *Tag) handleWrite(c epc.Write) *Reply {
	if t.state != StateAcknowledged || c.RN16 != t.rn16 {
		return nil
	}
	if c.MemBank != epc.BankUser || t.lockedUser {
		return nil // EPC/TID always locked; User lockable via Lock
	}
	ptr := int(c.WordPtr)
	if ptr < 0 || ptr >= len(t.Mem.User) {
		return nil
	}
	t.Mem.User[ptr] = c.Data ^ t.coverRN
	return &Reply{Bits: epc.WriteReply(t.rn16), Kind: "write"}
}
