package tag

import (
	"testing"

	"rfly/internal/epc"
	"rfly/internal/geom"
	"rfly/internal/rng"
)

// handshake drives a tag to the handled state and returns the handle.
func handshake(t *testing.T, tg *Tag) uint16 {
	t.Helper()
	if r := tg.Handle(epc.Query{Q: 0}); r == nil {
		t.Fatal("no RN16")
	}
	if r := tg.Handle(epc.ACK{RN16: tg.RN16()}); r == nil {
		t.Fatal("no EPC reply")
	}
	old := tg.RN16()
	r := tg.Handle(epc.ReqRN{RN16: old})
	if r == nil || r.Kind != "handle" {
		t.Fatalf("ReqRN reply %+v", r)
	}
	return tg.RN16()
}

func TestDefaultMemory(t *testing.T) {
	a := DefaultMemory(epc.NewEPC96(1, 2, 3, 4, 5, 6))
	b := DefaultMemory(epc.NewEPC96(1, 2, 3, 4, 5, 7))
	if len(a.TID) != 4 || len(a.User) != 8 {
		t.Fatalf("memory shape: %v %v", a.TID, a.User)
	}
	if a.TID[2] == b.TID[2] {
		t.Fatal("different EPCs share a TID serial")
	}
	if a.TID[0] != 0xE200 {
		t.Fatalf("TID class = %04X", a.TID[0])
	}
}

func TestReadTID(t *testing.T) {
	tg := newTestTag(21)
	handle := handshake(t, tg)
	r := tg.Handle(epc.Read{MemBank: epc.BankTID, WordPtr: 0, WordCount: 4, RN16: handle})
	if r == nil || r.Kind != "read" {
		t.Fatalf("read reply %+v", r)
	}
	words, rn, err := epc.ParseReadReply(r.Bits, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rn != handle {
		t.Fatalf("reply rn %04X, handle %04X", rn, handle)
	}
	for i, w := range tg.Mem.TID {
		if words[i] != w {
			t.Fatalf("TID word %d = %04X, want %04X", i, words[i], w)
		}
	}
}

func TestReadEPCBank(t *testing.T) {
	tg := newTestTag(22)
	handle := handshake(t, tg)
	r := tg.Handle(epc.Read{MemBank: epc.BankEPC, WordPtr: 2, WordCount: 2, RN16: handle})
	if r == nil {
		t.Fatal("no reply")
	}
	words, _, err := epc.ParseReadReply(r.Bits, 2)
	if err != nil {
		t.Fatal(err)
	}
	if words[0] != tg.EPC.Words[2] || words[1] != tg.EPC.Words[3] {
		t.Fatalf("EPC words = %04X %04X", words[0], words[1])
	}
}

func TestReadWholeBank(t *testing.T) {
	tg := newTestTag(23)
	handle := handshake(t, tg)
	// WordCount 0 = read to the end of the bank.
	r := tg.Handle(epc.Read{MemBank: epc.BankUser, WordPtr: 0, WordCount: 0, RN16: handle})
	if r == nil {
		t.Fatal("no reply")
	}
	if _, _, err := epc.ParseReadReply(r.Bits, len(tg.Mem.User)); err != nil {
		t.Fatal(err)
	}
}

func TestReadRejections(t *testing.T) {
	tg := newTestTag(24)
	// Not acknowledged: silence.
	if r := tg.Handle(epc.Read{MemBank: epc.BankTID, WordCount: 1, RN16: 1}); r != nil {
		t.Fatal("unacknowledged read answered")
	}
	handle := handshake(t, tg)
	// Wrong handle.
	if r := tg.Handle(epc.Read{MemBank: epc.BankTID, WordCount: 1, RN16: handle ^ 1}); r != nil {
		t.Fatal("wrong-handle read answered")
	}
	// Out of range.
	if r := tg.Handle(epc.Read{MemBank: epc.BankTID, WordPtr: 99, WordCount: 1, RN16: handle}); r != nil {
		t.Fatal("out-of-range read answered")
	}
	// Reserved bank.
	if r := tg.Handle(epc.Read{MemBank: epc.BankRFU, WordCount: 1, RN16: handle}); r != nil {
		t.Fatal("reserved-bank read answered")
	}
}

func TestWriteCoverCoded(t *testing.T) {
	tg := newTestTag(25)
	handle := handshake(t, tg)
	// Fetch a cover RN16 with a second ReqRN.
	r := tg.Handle(epc.ReqRN{RN16: handle})
	if r == nil || r.Kind != "cover-rn" {
		t.Fatalf("cover ReqRN reply %+v", r)
	}
	cover := uint16(bitsVal(t, r.Bits[:16]))
	const plaintext = 0x7A5C
	w := tg.Handle(epc.Write{MemBank: epc.BankUser, WordPtr: 2, Data: plaintext ^ cover, RN16: handle})
	if w == nil || w.Kind != "write" {
		t.Fatalf("write reply %+v", w)
	}
	if !epc.CheckCRC16(w.Bits) {
		t.Fatal("write reply CRC invalid")
	}
	if tg.Mem.User[2] != plaintext {
		t.Fatalf("stored %04X, want %04X (cover-coding broken)", tg.Mem.User[2], plaintext)
	}
	// Read it back over the protocol.
	rd := tg.Handle(epc.Read{MemBank: epc.BankUser, WordPtr: 2, WordCount: 1, RN16: tg.RN16()})
	words, _, err := epc.ParseReadReply(rd.Bits, 1)
	if err != nil {
		t.Fatal(err)
	}
	if words[0] != plaintext {
		t.Fatalf("read back %04X", words[0])
	}
}

func TestWriteRejections(t *testing.T) {
	tg := newTestTag(26)
	handle := handshake(t, tg)
	// EPC/TID banks are locked.
	if r := tg.Handle(epc.Write{MemBank: epc.BankEPC, WordPtr: 0, Data: 1, RN16: handle}); r != nil {
		t.Fatal("EPC bank write accepted")
	}
	// Out of range.
	if r := tg.Handle(epc.Write{MemBank: epc.BankUser, WordPtr: 64, Data: 1, RN16: handle}); r != nil {
		t.Fatal("out-of-range write accepted")
	}
	// Wrong handle.
	if r := tg.Handle(epc.Write{MemBank: epc.BankUser, WordPtr: 0, Data: 1, RN16: handle ^ 2}); r != nil {
		t.Fatal("wrong-handle write accepted")
	}
}

func TestHandleResetOnNewQuery(t *testing.T) {
	tg := tagForSeed(27)
	handshake(t, tg)
	// A new inventory round clears the handled state: the next ReqRN after
	// re-acknowledgment issues a fresh handle, not a cover RN.
	tg.ClearInventory()
	if r := tg.Handle(epc.Query{Q: 0}); r == nil {
		t.Fatal("no RN16 after reset")
	}
	tg.Handle(epc.ACK{RN16: tg.RN16()})
	r := tg.Handle(epc.ReqRN{RN16: tg.RN16()})
	if r == nil || r.Kind != "handle" {
		t.Fatalf("post-reset ReqRN kind = %+v", r)
	}
}

func tagForSeed(seed uint64) *Tag {
	return New(epc.NewEPC96(0xE280, 9, 8, 7, 6, 5), geom.P2(0, 0), DefaultConfig(), rng.New(seed))
}
