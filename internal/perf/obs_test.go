package perf

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestRunObsReport(t *testing.T) {
	if testing.Short() {
		t.Skip("harness run is itself the short-mode payload")
	}
	rep, err := RunObs(true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.GOMAXPROCS < 1 || len(rep.Results) < 5 {
		t.Fatalf("report %d procs, %d rows", rep.GOMAXPROCS, len(rep.Results))
	}
	for _, r := range rep.Results {
		if r.Name == "" || r.NsPerOp <= 0 {
			t.Fatalf("malformed row %+v", r)
		}
	}
	// Live gate with generous headroom for loaded CI machines: the
	// committed artifact is held to the real DisabledSpanBudgetNs by the
	// schema test; here we only catch order-of-magnitude regressions
	// (an accidental allocation or lock on the disabled path).
	if rep.DisabledSpanNsPerOp > 10*DisabledSpanBudgetNs {
		t.Fatalf("disabled span costs %.1f ns/op, budget %v ns/op (10x headroom exceeded)",
			rep.DisabledSpanNsPerOp, DisabledSpanBudgetNs)
	}
	if disabled := rep.Results[0]; disabled.AllocsPerOp != 0 {
		t.Fatalf("disabled span path allocates %d/op; must be alloc-free", disabled.AllocsPerOp)
	}
}

func TestBenchObsSchemaRoundTrip(t *testing.T) {
	var rep ObsReport
	decodeStrict(t, "BENCH_obs.json", &rep)
	if rep.GOMAXPROCS < 1 {
		t.Fatalf("gomaxprocs %d", rep.GOMAXPROCS)
	}
	if len(rep.Results) < 5 {
		t.Fatalf("only %d result rows", len(rep.Results))
	}
	for _, r := range rep.Results {
		if r.Name == "" || r.NsPerOp <= 0 {
			t.Fatalf("malformed row %+v", r)
		}
	}
	// The committed artifact must honor the disabled-span contract.
	if rep.DisabledSpanNsPerOp <= 0 || rep.DisabledSpanNsPerOp > DisabledSpanBudgetNs {
		t.Fatalf("committed disabled-span cost %.2f ns/op exceeds the %v ns/op budget",
			rep.DisabledSpanNsPerOp, DisabledSpanBudgetNs)
	}
	if rep.BudgetNs != DisabledSpanBudgetNs {
		t.Fatalf("artifact budget %v, code budget %v", rep.BudgetNs, DisabledSpanBudgetNs)
	}

	out, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back ObsReport
	dec := json.NewDecoder(bytes.NewReader(out))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&back); err != nil {
		t.Fatalf("re-decode: %v", err)
	}
	if back.GOMAXPROCS != rep.GOMAXPROCS || len(back.Results) != len(rep.Results) {
		t.Fatal("round-trip lost fields")
	}
	for i := range rep.Results {
		if back.Results[i] != rep.Results[i] {
			t.Fatalf("row %d changed in round-trip: %+v vs %+v", i, back.Results[i], rep.Results[i])
		}
	}
}
