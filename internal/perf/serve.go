package perf

// Serving benchmark records. rfly-load (the closed-loop generator
// driving rfly-serve) and the experiments service scenario both emit
// this shape, and BENCH_serve.json is its serialized form — one shared
// type so the schema cannot drift between producers. Latency quantiles
// are end-to-end (submit → terminal status) in milliseconds; throughput
// counts completed missions only.

// ServeReport is the BENCH_serve.json document.
type ServeReport struct {
	// Fleet shape.
	Shards   int `json:"shards"`
	QueueCap int `json:"queue_cap"`
	MaxBatch int `json:"max_batch"`

	// Offered load.
	Concurrency int `json:"concurrency"`
	Requests    int `json:"requests"`

	// Outcomes.
	Completed int `json:"completed"`
	Failed    int `json:"failed"`
	Expired   int `json:"expired"`
	// Rejections counts 429 backpressure responses; closed-loop workers
	// retry after the advertised Retry-After, so one request can
	// contribute several rejections before admission.
	Rejections       int     `json:"rejections"`
	RejectionRatePct float64 `json:"rejection_rate_pct"`

	// Service rates.
	ThroughputRPS float64 `json:"throughput_rps"`
	DurationS     float64 `json:"duration_s"`

	// End-to-end latency of completed missions, milliseconds.
	LatencyP50Ms float64 `json:"latency_p50_ms"`
	LatencyP95Ms float64 `json:"latency_p95_ms"`
	LatencyP99Ms float64 `json:"latency_p99_ms"`

	// Batching effectiveness, from the server's /metrics counters.
	Batches         int64   `json:"batches"`
	MeanBatchSize   float64 `json:"mean_batch_size"`
	BatchedRequests int64   `json:"batched_requests"`

	GOMAXPROCS int `json:"gomaxprocs"`
}
