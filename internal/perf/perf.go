// Package perf is the fast-path DSP benchmark harness: it measures the
// block-FFT convolver against the direct form, the Goertzel sweep against
// the naive DFT bin, the striped SAR grid search against the serial scan,
// and the pooled relay forwarding path's allocation count — and, before
// timing anything, asserts the fast paths are *equivalent* to the
// reference paths (≤1e-9 for convolution, bit-identical for the grid
// search). cmd/rfly-bench emits the measurements as BENCH_dsp.json; CI
// runs the short mode as a smoke gate.
package perf

import (
	"context"
	"fmt"
	"math"
	"math/cmplx"
	"runtime"
	"testing"

	"rfly/internal/drone"
	"rfly/internal/epc"
	"rfly/internal/geom"
	"rfly/internal/loc"
	"rfly/internal/relay"
	"rfly/internal/rng"
	"rfly/internal/signal"
	"rfly/internal/sim"
	"rfly/internal/world"
)

// Result is one benchmark row of the BENCH_dsp.json report.
type Result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// SpeedupVsDirect compares against the row's reference path
	// (direct convolution, naive DFT bin, or the serial grid scan);
	// 0 means the row has no reference pairing.
	SpeedupVsDirect float64 `json:"speedup_vs_direct,omitempty"`
	Note            string  `json:"note,omitempty"`
}

// Report is the full harness output.
type Report struct {
	GOMAXPROCS int      `json:"gomaxprocs"`
	Short      bool     `json:"short"`
	Results    []Result `json:"results"`
	Notes      []string `json:"notes,omitempty"`
}

func randomIQ(n int, seed uint64) []complex128 {
	src := rng.New(seed)
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(src.Norm(), src.Norm())
	}
	return x
}

func maxAbsErr(a, b []complex128) float64 {
	worst := 0.0
	for i := range a {
		if e := cmplx.Abs(a[i] - b[i]); e > worst {
			worst = e
		}
	}
	return worst
}

// CheckConvolutionEquivalence asserts the auto-selected Apply (which
// takes the overlap-save path at these sizes) matches ApplyDirect to
// ≤1e-9 max abs error on randomized IQ buffers.
func CheckConvolutionEquivalence() error {
	seed := uint64(41)
	for _, taps := range []int{63, 95} {
		f := signal.LowPass(250e3, signal.DefaultSampleRate, taps)
		for _, n := range []int{4096, 16384, 20000} {
			x := randomIQ(n, seed)
			seed++
			if e := maxAbsErr(f.Apply(x), f.ApplyDirect(x)); e > 1e-9 {
				return fmt.Errorf("perf: taps=%d n=%d: FFT vs direct max error %g > 1e-9", taps, n, e)
			}
		}
	}
	return nil
}

// testbed collects the Figure-12-style SAR aperture the grid-search
// rows run over.
func testbed() ([]loc.Measurement, geom.Trajectory, error) {
	d := sim.New(sim.Config{Scene: world.OpenSpace(), ReaderPos: geom.P(-12, 1, 1.2),
		UseRelay: true, RelayPos: geom.P(0, 0, 0.8)}, 99)
	tg := d.AddTag(epc.NewEPC96(7, 7, 7, 7, 7, 7), geom.P(1.5, 2.0, 0))
	plan := geom.Line(geom.P(0, 0, 0.8), geom.P(3, 0, 0.8), 40)
	flight := drone.Bebop2().Fly(plan, drone.DefaultOptiTrack(), rng.New(99).Split("f"))
	cap, err := d.CollectSAR(flight, tg)
	if err != nil {
		return nil, geom.Trajectory{}, err
	}
	return cap.Disentangled, flight.MeasuredTrajectory(), nil
}

func gridConfig() loc.Config {
	cfg := loc.DefaultConfig(915e6)
	cfg.Region = &loc.Region{X0: -2, Y0: 0.2, X1: 5, Y1: 5}
	return cfg
}

// CheckParallelEquivalence asserts the striped grid search is
// bit-identical to the serial scan on the testbed aperture: location,
// peak, and every heatmap cell.
func CheckParallelEquivalence() error {
	meas, traj, err := testbed()
	if err != nil {
		return err
	}
	cfg := gridConfig()
	cfg.Workers = 1
	serial, err := loc.Localize(meas, traj, cfg)
	if err != nil {
		return err
	}
	cfg.Workers = 0
	par, err := loc.Localize(meas, traj, cfg)
	if err != nil {
		return err
	}
	if par.Location != serial.Location || par.Peak != serial.Peak {
		return fmt.Errorf("perf: parallel location %+v peak %v != serial %+v peak %v",
			par.Location, par.Peak, serial.Location, serial.Peak)
	}
	for i := range par.Heatmap.Data {
		if par.Heatmap.Data[i] != serial.Heatmap.Data[i] {
			return fmt.Errorf("perf: heatmap cell %d differs: parallel %v vs serial %v",
				i, par.Heatmap.Data[i], serial.Heatmap.Data[i])
		}
	}
	return nil
}

// CheckStreamEquivalence asserts the streaming accumulator's finalize is
// bit-identical to the batch grid search on the testbed aperture —
// location, peak, and every heatmap cell — for every worker count and
// regardless of how the capture stream is chopped into batches. The
// batch boundaries exercise the invariant the checkpoint codec leans on:
// per-cell accumulation order is arrival order, so chopping never moves
// a bit.
func CheckStreamEquivalence() error {
	meas, traj, err := testbed()
	if err != nil {
		return err
	}
	cfg := gridConfig()
	cfg.Workers = 1
	batch, err := loc.Localize(meas, traj, cfg)
	if err != nil {
		return err
	}
	chops := [][]int{{len(meas)}, {1, 7, len(meas) - 8}}
	for _, workers := range []int{1, 2, 4, 8, 0} {
		scfg := gridConfig()
		scfg.Workers = workers
		for ci, chop := range chops {
			s, err := loc.NewStreamSolver(scfg)
			if err != nil {
				return err
			}
			off := 0
			for _, n := range chop {
				s.AddBatch(context.Background(), meas[off:off+n])
				off += n
			}
			snap, err := s.Snapshot(context.Background())
			if err != nil {
				return fmt.Errorf("perf: stream finalize (workers=%d chop=%d): %w", workers, ci, err)
			}
			if snap.Location != batch.Location || snap.Peak != batch.Peak {
				return fmt.Errorf("perf: stream (workers=%d chop=%d) location %+v peak %v != batch %+v peak %v",
					workers, ci, snap.Location, snap.Peak, batch.Location, batch.Peak)
			}
			for i := range snap.Heatmap.Data {
				if snap.Heatmap.Data[i] != batch.Heatmap.Data[i] {
					return fmt.Errorf("perf: stream (workers=%d chop=%d) heatmap cell %d differs: %v vs %v",
						workers, ci, i, snap.Heatmap.Data[i], batch.Heatmap.Data[i])
				}
			}
		}
	}
	return nil
}

// CheckMultiResEquivalence asserts the coarse-to-fine scan lands on the
// same refined answer as the exhaustive grid on the testbed aperture.
// The heatmaps differ by design (multires leaves unvisited cells zero),
// so the gate is the final location and peak, which both paths reach
// through the shared refineAndPick tail.
func CheckMultiResEquivalence() error {
	meas, traj, err := testbed()
	if err != nil {
		return err
	}
	cfg := gridConfig()
	cfg.Workers = 1
	exhaustive, err := loc.Localize(meas, traj, cfg)
	if err != nil {
		return err
	}
	mcfg := cfg
	mcfg.MultiRes = true
	mr, err := loc.Localize(meas, traj, mcfg)
	if err != nil {
		return err
	}
	if mr.Location != exhaustive.Location || mr.Peak != exhaustive.Peak {
		return fmt.Errorf("perf: multires location %+v peak %v != exhaustive %+v peak %v",
			mr.Location, mr.Peak, exhaustive.Location, exhaustive.Peak)
	}
	return nil
}

// row converts a testing.BenchmarkResult into a report row.
func row(name string, r testing.BenchmarkResult) Result {
	return Result{
		Name:        name,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// pair appends reference/fast rows with the speedup recorded on the fast
// row.
func pair(report *Report, refName string, ref testing.BenchmarkResult,
	fastName string, fast testing.BenchmarkResult, note string) {
	rr := row(refName, ref)
	fr := row(fastName, fast)
	if fr.NsPerOp > 0 {
		fr.SpeedupVsDirect = rr.NsPerOp / fr.NsPerOp
	}
	fr.Note = note
	report.Results = append(report.Results, rr, fr)
}

// bench runs fn with MemStats recording enabled.
func bench(fn func(b *testing.B)) testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		fn(b)
	})
}

// Run executes the harness. short trims buffer sizes and iteration
// budgets to CI-smoke scale.
func Run(short bool) (*Report, error) {
	if err := CheckConvolutionEquivalence(); err != nil {
		return nil, err
	}
	if err := CheckParallelEquivalence(); err != nil {
		return nil, err
	}
	if err := CheckStreamEquivalence(); err != nil {
		return nil, err
	}
	if err := CheckMultiResEquivalence(); err != nil {
		return nil, err
	}
	if err := CheckReplayEquivalence(); err != nil {
		return nil, err
	}
	report := &Report{GOMAXPROCS: runtime.GOMAXPROCS(0), Short: short}
	if report.GOMAXPROCS == 1 {
		report.Notes = append(report.Notes,
			"single-core host: the striped grid search degenerates to the serial scan, so grid_parallel speedup ≈ 1 here; the convolution and Goertzel rows carry the measured single-core speedups")
	}

	// Convolution: direct vs overlap-save, at the relay's LPF/BPF tap
	// counts over a representative capture block.
	n := 16384
	if short {
		n = 4096
	}
	for _, taps := range []int{63, 95} {
		f := signal.LowPass(250e3, signal.DefaultSampleRate, taps)
		x := randomIQ(n, uint64(taps))
		dst := make([]complex128, n)
		direct := bench(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				f.ApplyDirect(x)
			}
		})
		fft := bench(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				f.ApplyInto(dst, x)
			}
		})
		pair(report,
			fmt.Sprintf("conv_direct_taps%d_n%d", taps, n), direct,
			fmt.Sprintf("conv_fft_taps%d_n%d", taps, n), fft,
			"overlap-save block convolution vs direct form")
	}

	// Goertzel single-bin power vs the naive DFT bin it replaced.
	gx := randomIQ(n, 5)
	naive := bench(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			naiveBinPower(gx, 300e3, signal.DefaultSampleRate)
		}
	})
	goertzel := bench(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			signal.GoertzelPower(gx, 300e3, signal.DefaultSampleRate)
		}
	})
	pair(report, fmt.Sprintf("goertzel_naive_n%d", n), naive,
		fmt.Sprintf("goertzel_recurrence_n%d", n), goertzel,
		"second-order real recurrence vs complex rotation per sample")

	// Figure-6 heatmap grid search: serial vs striped worker pool.
	meas, traj, err := testbed()
	if err != nil {
		return nil, err
	}
	cfg := gridConfig()
	if short {
		cfg.CoarseRes = 0.2
	}
	cfg.Workers = 1
	serial := bench(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := loc.Localize(meas, traj, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	pcfg := cfg
	pcfg.Workers = 0
	parallel := bench(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := loc.Localize(meas, traj, pcfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	pair(report, "grid_serial_fig6", serial, "grid_parallel_fig6", parallel,
		fmt.Sprintf("striped rows across %d workers, bit-identical merge", report.GOMAXPROCS))
	serialNs := float64(serial.T.Nanoseconds()) / float64(serial.N)

	// Worker sweep over the striped scan: the scaling curve at fixed
	// worker counts, each bit-identical to the serial row above.
	for _, workers := range []int{2, 4, 8} {
		wcfg := cfg
		wcfg.Workers = workers
		wres := bench(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := loc.Localize(meas, traj, wcfg); err != nil {
					b.Fatal(err)
				}
			}
		})
		wr := row(fmt.Sprintf("grid_workers%d_fig6", workers), wres)
		if wr.NsPerOp > 0 {
			wr.SpeedupVsDirect = serialNs / wr.NsPerOp
		}
		wr.Note = "vs grid_serial_fig6; workers beyond GOMAXPROCS only queue"
		report.Results = append(report.Results, wr)
	}

	// Coarse-to-fine scan: the super-grid pass plus top-K basin fill,
	// same final argmax as the exhaustive grid (gated above).
	mcfg := cfg
	mcfg.MultiRes = true
	multires := bench(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := loc.Localize(meas, traj, mcfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	mr := row("grid_multires_fig6", multires)
	if mr.NsPerOp > 0 {
		mr.SpeedupVsDirect = serialNs / mr.NsPerOp
	}
	mr.Note = "4x super-grid coarse pass + top-K basin fill vs the exhaustive serial scan, same refined argmax"
	report.Results = append(report.Results, mr)

	// Streaming accumulator: the amortized cost of folding one capture
	// into the per-cell partial sums (grid allocation included), and the
	// end-of-mission finalize over the pre-accumulated grid — the row the
	// live-estimate path pays per sortie instead of a full batch solve.
	scfg := cfg
	scfg.Workers = 0
	add := bench(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s, err := loc.NewStreamSolver(scfg)
			if err != nil {
				b.Fatal(err)
			}
			s.AddBatch(context.Background(), meas)
		}
	})
	ar := row("stream_add_per_capture", add)
	ar.NsPerOp /= float64(len(meas))
	ar.AllocsPerOp /= int64(len(meas))
	ar.BytesPerOp /= int64(len(meas))
	ar.Note = fmt.Sprintf("full %d-capture aperture folded into a fresh grid, amortized per capture", len(meas))
	report.Results = append(report.Results, ar)

	solver, err := loc.NewStreamSolver(scfg)
	if err != nil {
		return nil, err
	}
	solver.AddBatch(context.Background(), meas)
	finalize := bench(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := solver.Snapshot(context.Background()); err != nil {
				b.Fatal(err)
			}
		}
	})
	fr := row("stream_finalize_fig6", finalize)
	if fr.NsPerOp > 0 {
		fr.SpeedupVsDirect = serialNs / fr.NsPerOp
	}
	fr.Note = "argmax + refinement + error bars over pre-accumulated sums vs the full batch solve; target >=5x"
	report.Results = append(report.Results, fr)
	if fr.SpeedupVsDirect > 0 && fr.SpeedupVsDirect < 5 {
		report.Notes = append(report.Notes, fmt.Sprintf(
			"stream_finalize_fig6 speedup %.1fx is below the 5x target on this host", fr.SpeedupVsDirect))
	}

	// Relay forwarding: the sortie tick path whose allocs/op the buffer
	// pool exists to cut.
	r := relay.New(relay.DefaultConfig(), rng.New(1))
	r.Lock(0)
	tone := signal.Tone(4096, 50e3, r.Cfg.Fs, 0, 1e-3)
	fwd := bench(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := r.ForwardDownlink(tone, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	fwdRow := row("relay_forward_downlink_n4096", fwd)
	fwdRow.Note = "pooled scratch buffers; allocs/op is the output buffer plus chain state only"
	report.Results = append(report.Results, fwdRow)

	// Capture plane: replay-from-log vs full sim re-run, and the
	// per-record append cost of the columnar log writer.
	if err := captureRows(report, short); err != nil {
		return nil, err
	}

	return report, nil
}

// naiveBinPower is the pre-fix GoertzelPower: one complex rotation per
// sample. Kept as the benchmark reference.
func naiveBinPower(x []complex128, freq, fs float64) float64 {
	if len(x) == 0 {
		return 0
	}
	w := -2 * math.Pi * freq / fs
	var acc complex128
	for i, v := range x {
		s, c := math.Sincos(w * float64(i))
		acc += v * complex(c, s)
	}
	n := float64(len(x))
	return (real(acc)*real(acc) + imag(acc)*imag(acc)) / (n * n)
}
