package perf

// Federation benchmark records. rfly-load -federation spawns 1-, 2-,
// and 4-node in-process fleets behind a federation coordinator and
// drives the same closed-loop workload through each, so one artifact
// (BENCH_federation.json) holds the whole scaling curve. Latency
// quantiles are end-to-end through the coordinator (submit → terminal
// status) in milliseconds; throughput counts completed missions only.

// FederationReport is the BENCH_federation.json document.
type FederationReport struct {
	// Offered load, identical for every fleet size.
	Requests    int `json:"requests"`
	Concurrency int `json:"concurrency"`

	// Per-node fleet shape (each node is its own sharded scheduler).
	ShardsPerNode int `json:"shards_per_node"`

	// Fleets is the scaling curve, one point per fleet size in the
	// order driven (1, 2, 4 nodes).
	Fleets []FederationPoint `json:"fleets"`

	GOMAXPROCS int `json:"gomaxprocs"`
}

// FederationPoint is one fleet size's measurement.
type FederationPoint struct {
	Nodes int `json:"nodes"`

	// Outcomes.
	Completed int `json:"completed"`
	Failed    int `json:"failed"`

	// Coordinator counters: how placement behaved under this load.
	// Spilled counts missions shed off their ring owner onto a less
	// loaded node; Replicated counts checkpoint boundaries copied to a
	// successor; Failovers counts node-death re-leases (zero in a
	// clean benchmark run).
	Spilled    int64 `json:"spilled"`
	Replicated int64 `json:"replicated"`
	Failovers  int64 `json:"failovers"`

	// Service rates.
	ThroughputRPS float64 `json:"throughput_rps"`
	DurationS     float64 `json:"duration_s"`

	// End-to-end latency of completed missions, milliseconds.
	LatencyP50Ms float64 `json:"latency_p50_ms"`
	LatencyP95Ms float64 `json:"latency_p95_ms"`
	LatencyP99Ms float64 `json:"latency_p99_ms"`

	// SpeedupVsSolo is this point's throughput over the 1-node
	// point's (1.0 for the first point by construction). On a
	// single-core host the curve is flat — the solve is CPU-bound and
	// federation buys fault isolation, not parallelism — so the field
	// records what the hardware actually delivered.
	SpeedupVsSolo float64 `json:"speedup_vs_solo"`
}
