package perf

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// The committed BENCH_*.json artifacts are contracts: CI scripts and the
// bench-trajectory tooling parse them by key. These tests pin each file
// to its Go record type — decode with unknown-field rejection, then
// re-marshal and require the canonical key order — so a drive-by edit to
// either the struct tags or the artifacts shows up as a test failure,
// and rfly-load cannot drift away from the shared ServeReport shape.

func decodeStrict(t *testing.T, path string, v any) []byte {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", path))
	if err != nil {
		t.Skipf("artifact %s not present: %v", path, err)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		t.Fatalf("%s does not match its record type: %v", path, err)
	}
	return data
}

func TestBenchDSPSchemaRoundTrip(t *testing.T) {
	var rep Report
	decodeStrict(t, "BENCH_dsp.json", &rep)
	if rep.GOMAXPROCS < 1 {
		t.Fatalf("gomaxprocs %d", rep.GOMAXPROCS)
	}
	if len(rep.Results) < 7 {
		t.Fatalf("only %d result rows", len(rep.Results))
	}
	for _, r := range rep.Results {
		if r.Name == "" || r.NsPerOp <= 0 {
			t.Fatalf("malformed row %+v", r)
		}
	}

	// Round-trip: marshal → decode must reproduce the same report.
	out, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	dec := json.NewDecoder(bytes.NewReader(out))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&back); err != nil {
		t.Fatalf("re-decode: %v", err)
	}
	if back.GOMAXPROCS != rep.GOMAXPROCS || len(back.Results) != len(rep.Results) {
		t.Fatal("round-trip lost fields")
	}
	for i := range rep.Results {
		if back.Results[i] != rep.Results[i] {
			t.Fatalf("row %d changed in round-trip: %+v vs %+v", i, back.Results[i], rep.Results[i])
		}
	}
}

// TestBenchDSPCaptureRows pins the capture-plane rows into the
// committed artifact: CI greps for them by name, and the replay row
// must carry a measured speedup against the full mission re-run.
func TestBenchDSPCaptureRows(t *testing.T) {
	var rep Report
	decodeStrict(t, "BENCH_dsp.json", &rep)
	rows := make(map[string]Result, len(rep.Results))
	for _, r := range rep.Results {
		rows[r.Name] = r
	}
	for _, name := range []string{"mission_rerun_fig6", "replay_solve_fig6", "capture_append_per_record"} {
		if _, ok := rows[name]; !ok {
			t.Fatalf("BENCH_dsp.json missing capture-plane row %q", name)
		}
	}
	if rp := rows["replay_solve_fig6"]; rp.SpeedupVsDirect <= 1 {
		t.Fatalf("replay_solve_fig6 carries no speedup vs the mission re-run: %+v", rp)
	} else if rp.NsPerOp >= rows["mission_rerun_fig6"].NsPerOp {
		t.Fatalf("replay row (%v ns) is not faster than the re-run row (%v ns)",
			rp.NsPerOp, rows["mission_rerun_fig6"].NsPerOp)
	}
	if ap := rows["capture_append_per_record"]; ap.NsPerOp > 10_000 {
		t.Fatalf("per-record append cost %v ns is not amortized (expected sub-microsecond scale)", ap.NsPerOp)
	}
}

func TestBenchServeSchemaRoundTrip(t *testing.T) {
	var rep ServeReport
	decodeStrict(t, "BENCH_serve.json", &rep)
	if rep.Shards < 1 || rep.Concurrency < 1 || rep.Completed < 1 {
		t.Fatalf("degenerate serve report: %+v", rep)
	}
	if rep.ThroughputRPS <= 0 || rep.LatencyP50Ms <= 0 {
		t.Fatalf("missing rate/latency fields: %+v", rep)
	}
	if rep.LatencyP99Ms < rep.LatencyP95Ms || rep.LatencyP95Ms < rep.LatencyP50Ms {
		t.Fatalf("latency quantiles out of order: p50 %v p95 %v p99 %v",
			rep.LatencyP50Ms, rep.LatencyP95Ms, rep.LatencyP99Ms)
	}

	out, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back ServeReport
	dec := json.NewDecoder(bytes.NewReader(out))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&back); err != nil {
		t.Fatalf("re-decode: %v", err)
	}
	if back != rep {
		t.Fatalf("round-trip changed report:\n%+v\nvs\n%+v", back, rep)
	}
}

func TestBenchFederationSchemaRoundTrip(t *testing.T) {
	var rep FederationReport
	decodeStrict(t, "BENCH_federation.json", &rep)
	if rep.Requests < 1 || rep.Concurrency < 1 || rep.ShardsPerNode < 1 {
		t.Fatalf("degenerate federation report: %+v", rep)
	}
	if len(rep.Fleets) < 3 {
		t.Fatalf("scaling curve has %d points, want >= 3 (1, 2, 4 nodes)", len(rep.Fleets))
	}
	wantNodes := []int{1, 2, 4}
	for i, p := range rep.Fleets {
		if i < len(wantNodes) && p.Nodes != wantNodes[i] {
			t.Fatalf("point %d is %d nodes, want %d", i, p.Nodes, wantNodes[i])
		}
		if p.Completed < 1 || p.ThroughputRPS <= 0 || p.DurationS <= 0 {
			t.Fatalf("degenerate point %+v", p)
		}
		if p.LatencyP99Ms < p.LatencyP95Ms || p.LatencyP95Ms < p.LatencyP50Ms {
			t.Fatalf("point %d latency quantiles out of order: %+v", i, p)
		}
		if p.SpeedupVsSolo <= 0 {
			t.Fatalf("point %d has no speedup ratio: %+v", i, p)
		}
	}

	out, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back FederationReport
	dec := json.NewDecoder(bytes.NewReader(out))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&back); err != nil {
		t.Fatalf("re-decode: %v", err)
	}
	if back.Requests != rep.Requests || len(back.Fleets) != len(rep.Fleets) {
		t.Fatal("round-trip lost fields")
	}
	for i := range rep.Fleets {
		if back.Fleets[i] != rep.Fleets[i] {
			t.Fatalf("point %d changed in round-trip: %+v vs %+v", i, back.Fleets[i], rep.Fleets[i])
		}
	}
}

// TestFederationPointKeySet pins the per-point JSON key set, so any tag
// rename is a deliberate, test-visible schema change.
func TestFederationPointKeySet(t *testing.T) {
	data, err := json.Marshal(FederationPoint{})
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	want := []string{
		"nodes", "completed", "failed",
		"spilled", "replicated", "failovers",
		"throughput_rps", "duration_s",
		"latency_p50_ms", "latency_p95_ms", "latency_p99_ms",
		"speedup_vs_solo",
	}
	if len(m) != len(want) {
		t.Fatalf("FederationPoint emits %d keys, want %d: %v", len(m), len(want), m)
	}
	for _, k := range want {
		if _, ok := m[k]; !ok {
			t.Fatalf("FederationPoint missing key %q", k)
		}
	}
}

// TestServeReportKeySet pins the exact JSON key set rfly-load emits, so
// any tag rename is a deliberate, test-visible schema change.
func TestServeReportKeySet(t *testing.T) {
	data, err := json.Marshal(ServeReport{})
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	want := []string{
		"shards", "queue_cap", "max_batch",
		"concurrency", "requests",
		"completed", "failed", "expired", "rejections", "rejection_rate_pct",
		"throughput_rps", "duration_s",
		"latency_p50_ms", "latency_p95_ms", "latency_p99_ms",
		"batches", "mean_batch_size", "batched_requests",
		"gomaxprocs",
	}
	if len(m) != len(want) {
		t.Fatalf("ServeReport emits %d keys, want %d: %v", len(m), len(want), m)
	}
	for _, k := range want {
		if _, ok := m[k]; !ok {
			t.Fatalf("ServeReport missing key %q", k)
		}
	}
}
