package perf

import (
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	"rfly/internal/obs"
)

// Observability-overhead harness: the flight recorder's contract is
// that an *uninstrumented* context makes every span call a no-op cheap
// enough to leave in the hot chain (sim tick, relay forward, SAR
// stripe) permanently. This harness measures that disabled path, the
// enabled recording path, the metric primitives, and the trace encoder;
// cmd/rfly-bench emits the rows as BENCH_obs.json.

// DisabledSpanBudgetNs is the contract ceiling for a StartSpan+End pair
// on a recorder-free context. The committed BENCH_obs.json is gated
// against it by the schema test.
const DisabledSpanBudgetNs = 25.0

// ObsReport is the BENCH_obs.json document.
type ObsReport struct {
	GOMAXPROCS int  `json:"gomaxprocs"`
	Short      bool `json:"short"`
	// DisabledSpanNsPerOp duplicates the span_disabled row's ns/op so
	// gating scripts can read one scalar.
	DisabledSpanNsPerOp float64  `json:"disabled_span_ns_per_op"`
	BudgetNs            float64  `json:"budget_ns"`
	Results             []Result `json:"results"`
}

// sampleSpans records a small representative trace for the encoder row.
func sampleSpans(n int) []obs.SpanRecord {
	rec := obs.NewRecorder(n + 8)
	ctx := obs.WithRecorder(context.Background(), rec)
	ctx, root := obs.StartSpan(ctx, "runtime.sortie")
	for i := 0; i < n; i++ {
		_, s := obs.StartSpan(ctx, "sim.read")
		s.Int("attempts", int64(i%4)).Bool("ok", i%3 == 0)
		s.End()
	}
	root.End()
	return rec.Snapshot()
}

// RunObs executes the observability harness. short trims the encoder's
// span count to CI-smoke scale.
func RunObs(short bool) (*ObsReport, error) {
	report := &ObsReport{GOMAXPROCS: runtime.GOMAXPROCS(0), Short: short, BudgetNs: DisabledSpanBudgetNs}

	// Disabled path: a context with no recorder. This is what the hot
	// chain pays in production when tracing is off.
	bg := context.Background()
	disabled := bench(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, s := obs.StartSpan(bg, "sim.read")
			s.Int("attempts", 1)
			s.End()
		}
	})
	dr := row("span_disabled", disabled)
	dr.Note = "StartSpan+attr+End on a recorder-free context; the always-on cost"
	report.Results = append(report.Results, dr)
	report.DisabledSpanNsPerOp = dr.NsPerOp

	// Enabled path: recording into the ring (steady-state: overwriting).
	rec := obs.NewRecorder(1024)
	rctx := obs.WithRecorder(bg, rec)
	enabled := bench(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, s := obs.StartSpan(rctx, "sim.read")
			s.Int("attempts", 1)
			s.End()
		}
	})
	er := row("span_enabled", enabled)
	er.Note = "recording into a 1024-slot ring, overwrite-oldest steady state"
	report.Results = append(report.Results, er)

	// Metric primitives at fleet cardinality.
	reg := obs.NewRegistry()
	ctr := reg.Counter("bench_total")
	counter := bench(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ctr.Inc()
		}
	})
	cr := row("counter_inc", counter)
	report.Results = append(report.Results, cr)

	h := obs.NewHistogram([]float64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000, 30000})
	histo := bench(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			h.ObserveDuration(time.Duration(i%5000) * time.Microsecond)
		}
	})
	hr := row("histogram_observe_duration", histo)
	hr.Note = "14-bucket latency histogram, the fleet /metrics shape"
	report.Results = append(report.Results, hr)

	// Trace encoding: spans → Chrome trace_event JSON.
	nSpans := 2048
	if short {
		nSpans = 256
	}
	spans := sampleSpans(nSpans)
	encode := bench(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := obs.EncodeTrace(spans); err != nil {
				b.Fatal(err)
			}
		}
	})
	tr := row(fmt.Sprintf("trace_encode_spans%d", len(spans)), encode)
	report.Results = append(report.Results, tr)

	return report, nil
}
