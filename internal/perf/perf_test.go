package perf

import (
	"context"
	"math"
	"testing"

	"rfly/internal/loc"
	"rfly/internal/signal"
)

func TestConvolutionEquivalence(t *testing.T) {
	if err := CheckConvolutionEquivalence(); err != nil {
		t.Fatal(err)
	}
}

func TestParallelEquivalence(t *testing.T) {
	if err := CheckParallelEquivalence(); err != nil {
		t.Fatal(err)
	}
}

func TestStreamEquivalence(t *testing.T) {
	if err := CheckStreamEquivalence(); err != nil {
		t.Fatal(err)
	}
}

func TestMultiResEquivalence(t *testing.T) {
	if err := CheckMultiResEquivalence(); err != nil {
		t.Fatal(err)
	}
}

func TestReplayEquivalence(t *testing.T) {
	if err := CheckReplayEquivalence(); err != nil {
		t.Fatal(err)
	}
}

func TestNaiveBinMatchesGoertzel(t *testing.T) {
	x := randomIQ(2048, 17)
	for _, freq := range []float64{0, 120e3, 300e3, -450e3} {
		a := naiveBinPower(x, freq, signal.DefaultSampleRate)
		b := signal.GoertzelPower(x, freq, signal.DefaultSampleRate)
		if math.Abs(a-b) > 1e-9*(1+a) {
			t.Fatalf("freq %v: naive %g vs goertzel %g", freq, a, b)
		}
	}
}

func TestRunShortReport(t *testing.T) {
	if testing.Short() {
		t.Skip("harness run is itself the short-mode payload")
	}
	rep, err := Run(true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.GOMAXPROCS < 1 || len(rep.Results) < 7 {
		t.Fatalf("report %d procs, %d rows", rep.GOMAXPROCS, len(rep.Results))
	}
	for _, r := range rep.Results {
		if r.NsPerOp <= 0 {
			t.Fatalf("row %s has ns/op %v", r.Name, r.NsPerOp)
		}
	}
}

// --- Sub-benchmarks (go test -bench over this package) ---------------------

func BenchmarkConvolution(b *testing.B) {
	for _, taps := range []int{63, 95} {
		f := signal.LowPass(250e3, signal.DefaultSampleRate, taps)
		x := randomIQ(16384, uint64(taps))
		dst := make([]complex128, len(x))
		b.Run(name("direct_taps", taps), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				f.ApplyDirect(x)
			}
		})
		b.Run(name("fft_taps", taps), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				f.ApplyInto(dst, x)
			}
		})
	}
}

func BenchmarkGoertzel(b *testing.B) {
	x := randomIQ(16384, 5)
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			naiveBinPower(x, 300e3, signal.DefaultSampleRate)
		}
	})
	b.Run("recurrence", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			signal.GoertzelPower(x, 300e3, signal.DefaultSampleRate)
		}
	})
}

func BenchmarkGridSearch(b *testing.B) {
	meas, traj, err := testbed()
	if err != nil {
		b.Fatal(err)
	}
	cfg := gridConfig()
	for _, workers := range []int{1, 0} {
		cfg.Workers = workers
		cfg := cfg
		b.Run(name("workers", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := loc.Localize(meas, traj, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkStream(b *testing.B) {
	meas, _, err := testbed()
	if err != nil {
		b.Fatal(err)
	}
	cfg := gridConfig()
	b.Run("add_aperture", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s, err := loc.NewStreamSolver(cfg)
			if err != nil {
				b.Fatal(err)
			}
			s.AddBatch(context.Background(), meas)
		}
	})
	s, err := loc.NewStreamSolver(cfg)
	if err != nil {
		b.Fatal(err)
	}
	s.AddBatch(context.Background(), meas)
	b.Run("finalize", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := s.Snapshot(context.Background()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkMultiRes(b *testing.B) {
	meas, traj, err := testbed()
	if err != nil {
		b.Fatal(err)
	}
	cfg := gridConfig()
	cfg.Workers = 1
	for _, multires := range []bool{false, true} {
		cfg.MultiRes = multires
		cfg := cfg
		label := "exhaustive"
		if multires {
			label = "coarse_to_fine"
		}
		b.Run(label, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := loc.Localize(meas, traj, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func name(prefix string, v int) string {
	const digits = "0123456789"
	if v == 0 {
		return prefix + "=0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = digits[v%10]
		v /= 10
	}
	return prefix + "=" + string(buf[i:])
}
