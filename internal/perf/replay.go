package perf

import (
	"context"
	"fmt"
	"math"
	"testing"

	"rfly/internal/capture"
	"rfly/internal/runtime"
)

// Capture-plane rows: the replay path's whole pitch is that re-solving
// a flown mission from its capture log costs milliseconds where a full
// sim re-run costs the whole flight again. Before timing it, the replay
// is gated on bit-identity with the live solve — same contract as the
// grid/stream equivalences above, held end to end through the log's
// encode/decode.

// replayMissionConfig is the mission the replay rows fly. The flight /
// aperture ratio matters: the re-run row pays every survey tick plus
// the launch-relock and landing DSP of every battery (the dominant
// cost), while the replay row pays only per capture record — so the
// honest shape is flight-dominated: long corridor surveys across many
// battery swaps, each contributing one SAR capture to the aperture.
// The mission still localizes; the aperture just accrues across
// sorties instead of within one.
func replayMissionConfig(short bool) runtime.Config {
	cfg := runtime.DefaultConfig(99)
	cfg.Sorties = 6
	cfg.TicksPerSortie = 600
	cfg.SARPointsPerSortie = 1
	if short {
		cfg.Sorties = 2
		cfg.TicksPerSortie = 16
		cfg.SARPointsPerSortie = 6
	}
	return cfg
}

// CheckReplayEquivalence asserts capture.Replay reconstructs the live
// mission solve bit for bit from the log alone: the replayed location
// matches the mission result, and the replayed robust snapshot matches
// the engine's final live estimate — x, y, sigmas, peak, and the
// total/kept aperture accounting — across worker counts.
func CheckReplayEquivalence() error {
	ctx := context.Background()
	cfg := replayMissionConfig(true)
	e, err := runtime.New(cfg)
	if err != nil {
		return err
	}
	var last runtime.LiveEstimate
	e.EstimateSink = func(est runtime.LiveEstimate) { last = est }
	res, err := e.Run(ctx)
	if err != nil {
		return err
	}
	if !res.LocOK {
		return fmt.Errorf("perf: replay testbed mission did not localize")
	}
	log := e.CaptureLog()
	if len(log) == 0 {
		return fmt.Errorf("perf: replay testbed mission produced no capture log")
	}
	for _, workers := range []int{0, 1, 3} {
		opts := capture.LiveOptions()
		opts.Workers = workers
		rp, err := capture.Replay(ctx, log, opts)
		if err != nil {
			return fmt.Errorf("perf: replay (workers=%d): %w", workers, err)
		}
		if rp.Location.X != res.LocX || rp.Location.Y != res.LocY {
			return fmt.Errorf("perf: replay (workers=%d) location (%v,%v) != live (%v,%v)",
				workers, rp.Location.X, rp.Location.Y, res.LocX, res.LocY)
		}
		if math.Float64bits(rp.SigmaX) != math.Float64bits(last.SigmaX) ||
			math.Float64bits(rp.SigmaY) != math.Float64bits(last.SigmaY) ||
			math.Float64bits(rp.Peak) != math.Float64bits(last.Peak) ||
			rp.Total != last.Total || rp.Kept != last.Kept {
			return fmt.Errorf("perf: replay (workers=%d) snapshot {sx=%v sy=%v peak=%v %d/%d} != live estimate {sx=%v sy=%v peak=%v %d/%d}",
				workers, rp.SigmaX, rp.SigmaY, rp.Peak, rp.Kept, rp.Total,
				last.SigmaX, last.SigmaY, last.Peak, last.Kept, last.Total)
		}
	}
	return nil
}

// captureRows appends the capture-plane rows to the report: the
// mission-rerun vs replay-solve pairing (the Fig. 12 workflow) and the
// amortized per-record append cost of the columnar log writer.
func captureRows(report *Report, short bool) error {
	ctx := context.Background()
	cfg := replayMissionConfig(short)
	e, err := runtime.New(cfg)
	if err != nil {
		return err
	}
	if _, err := e.Run(ctx); err != nil {
		return err
	}
	log := e.CaptureLog()

	// Bench the light row first: the rerun row hammers the core for
	// seconds and the heap it leaves behind (plus any thermal throttle)
	// would otherwise bleed into the millisecond-scale replay timing.
	replay := bench(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := capture.Replay(ctx, log, capture.LiveOptions()); err != nil {
				b.Fatal(err)
			}
		}
	})
	rerun := bench(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e, err := runtime.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := e.Run(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})
	pair(report, "mission_rerun_fig6", rerun, "replay_solve_fig6", replay,
		"re-solve from the capture log vs re-flying the whole sim; bit-identical answer, target >=20x")
	fast := &report.Results[len(report.Results)-1]
	if fast.SpeedupVsDirect > 0 && fast.SpeedupVsDirect < 20 {
		report.Notes = append(report.Notes, fmt.Sprintf(
			"replay_solve_fig6 speedup %.1fx is below the 20x target on this host", fast.SpeedupVsDirect))
	}

	// Per-record append cost: one sortie's worth of records sealed into
	// a segment of a fresh log, amortized — the price the engine pays at
	// each commit to make the mission replayable.
	rd, err := capture.OpenLog(log)
	if err != nil {
		return err
	}
	recs := make([]capture.Record, 0, int(rd.Records()))
	for i := 0; i < rd.NumSegments(); i++ {
		seg := rd.Segment(i)
		for j := 0; j < seg.Count(); j++ {
			r := seg.Record(j)
			recs = append(recs, capture.Record{
				T: r.T(), Pos: r.Pos(), H: r.H(), SNRdB: r.SNRdB(), Unlocked: r.Unlocked(),
			})
		}
	}
	hdr := rd.Header()
	app := bench(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			l := capture.NewLog(hdr)
			l.AppendSegmentCtx(ctx, 1, recs)
		}
	})
	ar := row("capture_append_per_record", app)
	ar.NsPerOp /= float64(len(recs))
	ar.AllocsPerOp /= int64(len(recs))
	ar.BytesPerOp /= int64(len(recs))
	ar.Note = fmt.Sprintf("%d records sealed into a CRC'd segment of a fresh log, amortized per 64-byte record", len(recs))
	report.Results = append(report.Results, ar)
	return nil
}
