// Package rng provides the deterministic random number generation used
// throughout the RFly simulation.
//
// Every stochastic component (shadowing draws, oscillator phase offsets,
// thermal noise, trajectory jitter, tag RN16s) takes an explicit *rng.Source
// rather than using global math/rand state, so every experiment in the paper
// reproduction is replayable bit-for-bit from its seed. Sources are cheap to
// split into independent named streams, which keeps adding a new consumer
// from perturbing the draws seen by existing ones.
package rng

import (
	"fmt"
	"math"
)

// Source is a PCG-XSH-RR 64/32-based generator with a 64-bit state and a
// 63-bit odd stream selector. The zero value is NOT valid; use New or Split.
type Source struct {
	state uint64
	inc   uint64 // odd

	// cached second Gaussian from Box-Muller
	gauss   float64
	hasNorm bool
}

// New returns a Source seeded from seed on the default stream.
func New(seed uint64) *Source {
	return NewStream(seed, 0xda3e39cb94b95bdb)
}

// NewStream returns a Source seeded from seed on the given stream. Two
// sources with different streams are statistically independent even when
// they share a seed.
func NewStream(seed, stream uint64) *Source {
	s := &Source{inc: (stream << 1) | 1}
	s.state = 0
	s.Uint32()
	s.state += seed
	s.Uint32()
	return s
}

// Split derives an independent child source from s using a name hash. The
// parent's state is not consumed, so the set of children is a pure function
// of (parent seed, name) — adding a consumer never disturbs another's draws.
func (s *Source) Split(name string) *Source {
	h := fnv64(name)
	return NewStream(s.state^h, s.inc^(h>>1)|1)
}

// fnv64 is the FNV-1a 64-bit hash of name.
func fnv64(name string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime
	}
	return h
}

// State is a Source's complete serializable state, exposed so mission
// checkpoints (internal/runtime) can persist and restore RNG streams
// bit-exactly. Two sources with equal States produce identical draw
// sequences forever.
type State struct {
	State uint64
	Inc   uint64
	// Gauss/HasNorm carry the Box-Muller cache so a restored source
	// continues the Gaussian sequence exactly where the snapshot left it.
	Gauss   float64
	HasNorm bool
}

// Snapshot captures the source's full state for checkpointing.
func (s *Source) Snapshot() State {
	return State{State: s.state, Inc: s.inc, Gauss: s.gauss, HasNorm: s.hasNorm}
}

// Restore builds a Source that resumes exactly from a snapshot. It
// returns an error (rather than silently mis-seeding) when the snapshot
// is structurally invalid: the stream selector of a live PCG source is
// always odd.
func Restore(st State) (*Source, error) {
	if st.Inc&1 == 0 {
		return nil, fmt.Errorf("rng: snapshot stream selector %#x is even", st.Inc)
	}
	return &Source{state: st.State, inc: st.Inc, gauss: st.Gauss, hasNorm: st.HasNorm}, nil
}

// Uint32 returns the next 32 random bits (PCG-XSH-RR output function).
func (s *Source) Uint32() uint32 {
	old := s.state
	s.state = old*6364136223846793005 + s.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return (xorshifted >> rot) | (xorshifted << ((-rot) & 31))
}

// Uint64 returns the next 64 random bits.
func (s *Source) Uint64() uint64 {
	return uint64(s.Uint32())<<32 | uint64(s.Uint32())
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method on 32 bits when possible.
	if n <= 1<<31 {
		bound := uint32(n)
		threshold := -bound % bound
		for {
			r := s.Uint32()
			m := uint64(r) * uint64(bound)
			if uint32(m) >= threshold {
				return int(m >> 32)
			}
		}
	}
	// Large n: 64-bit modulo rejection.
	max := ^uint64(0) - ^uint64(0)%uint64(n)
	for {
		v := s.Uint64()
		if v < max {
			return int(v % uint64(n))
		}
	}
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Uniform returns a uniform float64 in [lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.Float64()
}

// Norm returns a standard Gaussian draw (mean 0, variance 1) via Box-Muller.
func (s *Source) Norm() float64 {
	if s.hasNorm {
		s.hasNorm = false
		return s.gauss
	}
	var u float64
	for u == 0 {
		u = s.Float64()
	}
	v := s.Float64()
	r := math.Sqrt(-2 * math.Log(u))
	s.gauss = r * math.Sin(2*math.Pi*v)
	s.hasNorm = true
	return r * math.Cos(2*math.Pi*v)
}

// Gaussian returns a Gaussian draw with the given mean and standard
// deviation.
func (s *Source) Gaussian(mean, sigma float64) float64 {
	return mean + sigma*s.Norm()
}

// LogNormalDB returns a multiplicative fading term expressed in dB: a
// Gaussian draw with standard deviation sigmaDB. It is the standard model
// for log-normal shadowing; callers add the result to a path-loss budget.
func (s *Source) LogNormalDB(sigmaDB float64) float64 {
	return s.Gaussian(0, sigmaDB)
}

// Phase returns a uniform phase in [0, 2π).
func (s *Source) Phase() float64 {
	return 2 * math.Pi * s.Float64()
}

// ComplexCircular returns a zero-mean circularly-symmetric complex Gaussian
// with the given per-quadrature standard deviation (so E|z|² = 2σ²).
func (s *Source) ComplexCircular(sigma float64) complex128 {
	return complex(s.Gaussian(0, sigma), s.Gaussian(0, sigma))
}

// Bool returns a fair coin flip.
func (s *Source) Bool() bool { return s.Uint32()&1 == 1 }

// Uint16 returns 16 random bits; handy for RN16 generation in the Gen2 MAC.
func (s *Source) Uint16() uint16 { return uint16(s.Uint32() >> 16) }

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
