package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed sources diverged at draw %d", i)
		}
	}
}

func TestSeedSensitivity(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint32() == b.Uint32() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split("shadowing")
	c2 := parent.Split("noise")
	c1b := New(7).Split("shadowing")
	// Same name + same parent seed → identical stream.
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c1b.Uint64() {
			t.Fatal("Split is not a pure function of (seed, name)")
		}
	}
	// Different names → different streams.
	c1 = New(7).Split("shadowing")
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Uint32() == c2.Uint32() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams overlap: %d/100 identical", same)
	}
}

func TestSplitDoesNotConsumeParent(t *testing.T) {
	a, b := New(3), New(3)
	_ = a.Split("x")
	_ = a.Split("y")
	if a.Uint64() != b.Uint64() {
		t.Fatal("Split consumed parent state")
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(11)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(12)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ≈0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(13)
	seen := make(map[int]int)
	for i := 0; i < 60000; i++ {
		v := s.Intn(6)
		if v < 0 || v >= 6 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v]++
	}
	for k := 0; k < 6; k++ {
		if seen[k] < 8000 || seen[k] > 12000 {
			t.Fatalf("Intn(6) biased: bucket %d has %d/60000", k, seen[k])
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormMoments(t *testing.T) {
	s := New(14)
	const n = 200000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := s.Norm()
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("Norm mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("Norm variance = %v", variance)
	}
}

func TestGaussian(t *testing.T) {
	s := New(15)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Gaussian(10, 2)
	}
	if mean := sum / n; math.Abs(mean-10) > 0.05 {
		t.Fatalf("Gaussian mean = %v, want ≈10", mean)
	}
}

func TestPhaseRange(t *testing.T) {
	s := New(16)
	for i := 0; i < 10000; i++ {
		p := s.Phase()
		if p < 0 || p >= 2*math.Pi {
			t.Fatalf("Phase out of range: %v", p)
		}
	}
}

func TestComplexCircular(t *testing.T) {
	s := New(17)
	const n = 100000
	var pw float64
	for i := 0; i < n; i++ {
		z := s.ComplexCircular(1)
		pw += real(z)*real(z) + imag(z)*imag(z)
	}
	if mean := pw / n; math.Abs(mean-2) > 0.05 {
		t.Fatalf("E|z|² = %v, want ≈2", mean)
	}
}

func TestPerm(t *testing.T) {
	s := New(18)
	p := s.Perm(10)
	seen := make([]bool, 10)
	for _, v := range p {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("Perm invalid: %v", p)
		}
		seen[v] = true
	}
}

func TestUniform(t *testing.T) {
	s := New(19)
	for i := 0; i < 1000; i++ {
		v := s.Uniform(-3, 7)
		if v < -3 || v >= 7 {
			t.Fatalf("Uniform out of range: %v", v)
		}
	}
}

func TestUint16Coverage(t *testing.T) {
	s := New(20)
	lo, hi := false, false
	for i := 0; i < 100000 && !(lo && hi); i++ {
		v := s.Uint16()
		if v < 1000 {
			lo = true
		}
		if v > 64000 {
			hi = true
		}
	}
	if !lo || !hi {
		t.Fatal("Uint16 does not cover its range")
	}
}

func TestSnapshotRestoreContinues(t *testing.T) {
	// A restored source must continue the exact stream, including a
	// buffered second normal deviate.
	s := New(33)
	for i := 0; i < 7; i++ {
		s.Norm() // odd count leaves hasNorm set
	}
	st := s.Snapshot()
	r, err := Restore(st)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if a, b := s.Norm(), r.Norm(); a != b {
			t.Fatalf("divergence at draw %d: %v vs %v", i, a, b)
		}
		if a, b := s.Uint64(), r.Uint64(); a != b {
			t.Fatalf("uint divergence at draw %d: %x vs %x", i, a, b)
		}
	}
}

func TestRestoreRejectsEvenStream(t *testing.T) {
	if _, err := Restore(State{State: 1, Inc: 2}); err == nil {
		t.Fatal("even stream selector accepted")
	}
}
