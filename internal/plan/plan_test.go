package plan

import (
	"context"
	"math"
	"reflect"
	"testing"

	"rfly/internal/drone"
	"rfly/internal/geom"
	"rfly/internal/sim"
	"rfly/internal/world"
)

// warehouseScenario is the Fig. 6 warehouse fixture: the 30×20 m
// three-rack floor from the warehouse generator (tag placement pinned at
// its own fixture seed), with the planner's hover region spanning the
// aisles. The seed argument lands in Scenario.Seed only — provenance,
// not input — which is exactly what the determinism test asserts.
func warehouseScenario(seed uint64) Scenario {
	opts := sim.DefaultWarehouseOpts(6) // Fig. 6 fixture placement
	opts.TagsPerMeter = 1.0
	return Scenario{
		Scene:     world.Warehouse(opts.WidthM, opts.DepthM, opts.Rows),
		ReaderPos: opts.ReaderPos,
		Tags:      opts.TagPositions(),
		Start:     geom.P(1.5, 1.0, 0),
		Constraints: Constraints{
			X0: 3, Y0: 2, X1: 27, Y1: 18,
			AltitudeM:   2.5,
			SpacingM:    3,
			MaxStations: 40,
			MinTagSNRdB: 3,
			TagReadHz:   40,
		},
		Seed: seed,
	}
}

func TestPlannerDeterminismAcross16Seeds(t *testing.T) {
	for _, p := range Planners() {
		var ref Result
		for trial := 0; trial < 16; trial++ {
			seed := uint64(1000 + trial*104729)
			res, err := p.Plan(context.Background(), warehouseScenario(seed))
			if err != nil {
				t.Fatalf("%s seed %d: %v", p.Name(), seed, err)
			}
			if len(res.Stations) == 0 || res.Covered == 0 {
				t.Fatalf("%s seed %d: empty plan %v", p.Name(), seed, res)
			}
			// Strip the provenance echo: the plan itself must be
			// seed-invariant.
			res.Seed = 0
			if trial == 0 {
				ref = res
				continue
			}
			if res.Hash() != ref.Hash() || !reflect.DeepEqual(res, ref) {
				t.Fatalf("%s: plan differs at seed %d:\n  ref %v\n  got %v",
					p.Name(), seed, ref, res)
			}
		}
	}
}

func TestCoverageAwareBeatsGreedyOnWarehouse(t *testing.T) {
	s := warehouseScenario(2017)
	g, err := Greedy{}.Plan(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	c, err := CoverageAware{}.Plan(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("greedy:         %v", g)
	t.Logf("coverage-aware: %v", c)
	if g.Covered == 0 || c.Covered == 0 {
		t.Fatalf("planners covered nothing: greedy %d, coverage-aware %d", g.Covered, c.Covered)
	}
	// The pinned regression: the set-cover planner never pays more
	// energy per inventoried tag than the nearest-uncovered baseline on
	// this fixture.
	if c.EnergyPerTagJ > g.EnergyPerTagJ {
		t.Fatalf("coverage-aware %.3f J/tag exceeds greedy %.3f J/tag",
			c.EnergyPerTagJ, g.EnergyPerTagJ)
	}
	// And it must not buy that efficiency by abandoning coverage.
	if c.Covered < g.Covered {
		t.Fatalf("coverage-aware covered %d < greedy %d", c.Covered, g.Covered)
	}
}

func TestPlanEnergyAccounting(t *testing.T) {
	s := warehouseScenario(7)
	res, err := CoverageAware{}.Plan(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if res.EnergyJ <= 0 || math.IsInf(res.EnergyPerTagJ, 1) {
		t.Fatalf("degenerate energy accounting: %v", res)
	}
	wantE := drone.Bebop2Power().EnergyJ(res.FlightS + res.LostAirtimeS)
	if math.Abs(res.EnergyJ-wantE) > 1e-9 {
		t.Fatalf("energy %g J, want %g", res.EnergyJ, wantE)
	}
	var dwell float64
	for _, st := range res.Stations {
		dwell += st.DwellS
		if st.NewTags <= 0 {
			t.Fatalf("station with no new tags: %+v", st)
		}
	}
	transit := res.PathLengthM / drone.Bebop2().SpeedMS
	if math.Abs(res.FlightS-(transit+dwell)) > 1e-9 {
		t.Fatalf("flight %g s, want transit %g + dwell %g", res.FlightS, transit, dwell)
	}

	// A sagging pack must cost airtime and therefore energy.
	sagged := s
	sagged.Sags = []drone.BatterySag{{Sortie: 1, FlightFrac: 0.1, CapacityFrac: 0.3}}
	sres, err := CoverageAware{}.Plan(context.Background(), sagged)
	if err != nil {
		t.Fatal(err)
	}
	if !(sres.LostAirtimeS > 0) || !(sres.EnergyJ > res.EnergyJ) {
		t.Fatalf("sag did not cost energy: lost %g s, %g J vs %g J",
			sres.LostAirtimeS, sres.EnergyJ, res.EnergyJ)
	}
	// The tour itself is unchanged — sag prices the plan, it does not
	// re-route it.
	if !reflect.DeepEqual(sres.Stations, res.Stations) {
		t.Fatal("battery sag changed the tour")
	}
}

func TestConstraintsValidateAndCandidates(t *testing.T) {
	good := warehouseScenario(1).Constraints
	if err := good.Validate(); err != nil {
		t.Fatalf("fixture constraints rejected: %v", err)
	}
	cands := good.Candidates()
	if len(cands) == 0 || len(cands) > maxCandidates {
		t.Fatalf("lattice size %d", len(cands))
	}
	if len(cands) != good.latticeSize() {
		t.Fatalf("lattice %d, latticeSize %d", len(cands), good.latticeSize())
	}
	for _, p := range cands {
		if p.X < good.X0 || p.X > good.X1 || p.Y < good.Y0 || p.Y > good.Y1 || p.Z != good.AltitudeM {
			t.Fatalf("candidate off-lattice: %v", p)
		}
	}
	bad := []Constraints{
		{X0: 5, X1: 3, Y0: 0, Y1: 1, SpacingM: 1, MaxStations: 4, TagReadHz: 10},
		{X0: 0, X1: 10, Y0: 0, Y1: 10, SpacingM: 0.01, MaxStations: 4, TagReadHz: 10},
		{X0: 0, X1: 10, Y0: 0, Y1: 10, SpacingM: 1, MaxStations: 0, TagReadHz: 10},
		{X0: 0, X1: 10, Y0: 0, Y1: 10, SpacingM: 1, MaxStations: 4, TagReadHz: 0},
		{X0: 0, X1: 10, Y0: 0, Y1: 10, SpacingM: 1, MaxStations: 4, TagReadHz: 10, MinTagSNRdB: 99},
		{X0: 0, X1: 1000, Y0: 0, Y1: 1000, SpacingM: 0.5, MaxStations: 4, TagReadHz: 10},
		{X0: math.NaN(), X1: 10, Y0: 0, Y1: 10, SpacingM: 1, MaxStations: 4, TagReadHz: 10},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad constraints %d accepted: %+v", i, c)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"greedy", "coverage-aware", "coverage"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("annealing"); err == nil {
		t.Error("unknown planner accepted")
	}
}
