package plan

import (
	"context"
)

// CoverageAware is the weighted set-cover planner: each step it hovers
// at the lattice candidate minimizing marginal energy per newly covered
// tag — the energy being the transit from the current position plus the
// hover dwell those new tags cost, at the platform's power draw. This is
// the classic greedy approximation to weighted set cover with the
// arXiv:2007.12284 objective as the weight.
type CoverageAware struct{}

// Name implements Planner.
func (CoverageAware) Name() string { return "coverage-aware" }

// Plan implements Planner.
func (CoverageAware) Plan(ctx context.Context, s Scenario) (Result, error) {
	return solve(ctx, "coverage-aware", s, coverageAwareTour)
}

func coverageAwareTour(s Scenario, cov *coverage) []Station {
	covered := make([]bool, len(cov.tagCovers))
	cur := s.Start
	powerW := s.Power.TotalW()
	var stations []Station
	for len(stations) < s.Constraints.MaxStations {
		best, bestScore := -1, 0.0
		for ci := range cov.cands {
			gain := 0
			for _, ti := range cov.covers[ci] {
				if !covered[ti] {
					gain++
				}
			}
			if gain == 0 {
				continue
			}
			travelS := cur.Dist(cov.cands[ci]) / s.Platform.SpeedMS
			dwellS := float64(gain) / s.Constraints.TagReadHz
			score := powerW * (travelS + dwellS) / float64(gain)
			if best == -1 || score < bestScore {
				best, bestScore = ci, score
			}
		}
		if best == -1 {
			break
		}
		newTags := 0
		for _, ti := range cov.covers[best] {
			if !covered[ti] {
				covered[ti] = true
				newTags++
			}
		}
		stations = append(stations, Station{
			Pos:     cov.cands[best],
			NewTags: newTags,
			DwellS:  float64(newTags) / s.Constraints.TagReadHz,
		})
		cur = cov.cands[best]
	}
	return stations
}
