// Package plan is the relay trajectory/positioning optimizer: given a
// scene, a reader, and a tag population, it decides where the drone
// relay should hover and in what order, scoring candidate tours by
// energy per inventoried tag (the arXiv:2007.12284 objective) against
// the existing propagation link-budget and drone battery-sag models.
//
// Planners never roll dice: a plan is a pure function of its Scenario,
// proven by the cross-seed determinism tests. Scenario.Seed is recorded
// as provenance only — the runtime folds the emitted plan's name and
// hash into its config hash and checkpoints, so a resumed mission can
// prove it is flying the same plan it started with.
package plan

import (
	"context"
	"fmt"
	"hash/fnv"
	"math"
	"time"

	"rfly/internal/drone"
	"rfly/internal/epc"
	"rfly/internal/geom"
	"rfly/internal/obs"
	"rfly/internal/sim"
	"rfly/internal/world"
)

// probeSeed fixes the nominal-hardware draw the coverage predictor uses:
// predictions describe a typical relay build, independent of whatever
// seed the mission itself will fly with.
const probeSeed = 0x51ab

// maxCandidates bounds the placement lattice a scenario may request.
const maxCandidates = 4096

// Constraints bound where the planner may put relay stations and what
// "covered" means. This is the fuzzed validation surface.
type Constraints struct {
	// [X0,X1]×[Y0,Y1] is the admissible hover region; AltitudeM the
	// hover height; SpacingM the candidate lattice pitch.
	X0, Y0, X1, Y1 float64
	AltitudeM      float64
	SpacingM       float64
	// MaxStations caps the tour length.
	MaxStations int
	// MinTagSNRdB is the decode margin a predicted link budget must
	// clear for a tag to count as covered from a station.
	MinTagSNRdB float64
	// TagReadHz converts a station's newly covered tags into hover dwell
	// time (tags inventoried per second of hovering).
	TagReadHz float64
}

// Validate rejects constraint sets the planner cannot interpret.
func (c Constraints) Validate() error {
	for _, v := range []float64{c.X0, c.Y0, c.X1, c.Y1, c.AltitudeM, c.SpacingM, c.MinTagSNRdB, c.TagReadHz} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("plan: constraints have non-finite field")
		}
	}
	if c.X1 <= c.X0 || c.Y1 <= c.Y0 {
		return fmt.Errorf("plan: empty hover region [%g,%g]×[%g,%g]", c.X0, c.X1, c.Y0, c.Y1)
	}
	if c.SpacingM < 0.1 {
		return fmt.Errorf("plan: lattice spacing %g m too fine (want ≥ 0.1)", c.SpacingM)
	}
	if c.AltitudeM < 0 || c.AltitudeM > 150 {
		return fmt.Errorf("plan: altitude %g m outside [0, 150]", c.AltitudeM)
	}
	if c.MaxStations < 1 || c.MaxStations > 256 {
		return fmt.Errorf("plan: max stations %d outside [1, 256]", c.MaxStations)
	}
	if c.MinTagSNRdB < -30 || c.MinTagSNRdB > 60 {
		return fmt.Errorf("plan: min tag SNR %g dB outside [-30, 60]", c.MinTagSNRdB)
	}
	if c.TagReadHz <= 0 || c.TagReadHz > 1e4 {
		return fmt.Errorf("plan: tag read rate %g Hz outside (0, 1e4]", c.TagReadHz)
	}
	if n := c.latticeSize(); n > maxCandidates {
		return fmt.Errorf("plan: lattice of %d candidates exceeds %d (coarsen SpacingM)", n, maxCandidates)
	}
	return nil
}

func (c Constraints) latticeSize() int {
	nx := int(math.Floor((c.X1-c.X0)/c.SpacingM)) + 1
	ny := int(math.Floor((c.Y1-c.Y0)/c.SpacingM)) + 1
	return nx * ny
}

// Candidates returns the row-major placement lattice over the region.
func (c Constraints) Candidates() []geom.Point {
	nx := int(math.Floor((c.X1-c.X0)/c.SpacingM)) + 1
	ny := int(math.Floor((c.Y1-c.Y0)/c.SpacingM)) + 1
	out := make([]geom.Point, 0, nx*ny)
	for iy := 0; iy < ny; iy++ {
		for ix := 0; ix < nx; ix++ {
			out = append(out, geom.P(c.X0+float64(ix)*c.SpacingM,
				c.Y0+float64(iy)*c.SpacingM, c.AltitudeM))
		}
	}
	return out
}

// Scenario is everything a planner consumes: the world, the reader, the
// tag population, the platform's flight economics, and the constraints.
type Scenario struct {
	Scene     *world.Scene
	FreqHz    float64 // 0 → 915 MHz
	ReaderPos geom.Point
	// Tags are the positions to inventory.
	Tags []geom.Point
	// Start is the launch/landing pad the tour departs from.
	Start geom.Point

	// Platform/Endurance/Power default to the Bebop 2 numbers.
	Platform  drone.Platform
	Endurance drone.Endurance
	Power     drone.PowerModel
	// Sags replays known battery degradation through the tour's sortie
	// schedule (drone.ExecuteWithSag) so a tired fleet plans honestly.
	Sags []drone.BatterySag

	Constraints Constraints

	// Seed is provenance only: planners are deterministic in the inputs
	// above and never consume it.
	Seed uint64
}

func (s Scenario) withDefaults() Scenario {
	if s.FreqHz == 0 {
		s.FreqHz = 915e6
	}
	if s.Platform.Name == "" {
		s.Platform = drone.Bebop2()
	}
	if s.Endurance.FlightTime <= 0 {
		s.Endurance = drone.Bebop2Endurance()
	}
	if s.Power.HoverW <= 0 {
		s.Power = drone.Bebop2Power()
	}
	return s
}

// Validate rejects scenarios the planners cannot solve.
func (s Scenario) Validate() error {
	if s.Scene == nil {
		return fmt.Errorf("plan: scenario needs a scene")
	}
	if len(s.Tags) == 0 {
		return fmt.Errorf("plan: scenario has no tags to inventory")
	}
	for _, p := range s.Tags {
		for _, v := range []float64{p.X, p.Y, p.Z} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("plan: tag at non-finite position")
			}
		}
	}
	return s.Constraints.Validate()
}

// Station is one stop of the tour: hover at Pos for DwellS seconds to
// inventory the NewTags tags this stop covers first.
type Station struct {
	Pos     geom.Point
	NewTags int
	DwellS  float64
}

// Result is a solved plan plus its energy accounting.
type Result struct {
	Planner  string
	Stations []Station
	// PathLengthM is Start → station₁ → … → stationₖ.
	PathLengthM float64
	// FlightS is airtime: transit at the platform's speed plus hover
	// dwell; Sorties the battery charges that airtime consumes.
	FlightS float64
	Sorties int
	// LostAirtimeS is what battery sag added (drone.ExecuteWithSag).
	LostAirtimeS float64
	// EnergyJ is the electrical cost of (FlightS + LostAirtimeS) at the
	// platform's power draw; EnergyPerTagJ divides by Covered.
	EnergyJ       float64
	EnergyPerTagJ float64
	// Covered of Total tags are predicted inventoried by the tour.
	Covered, Total int
	// Seed echoes Scenario.Seed (provenance only).
	Seed uint64
}

// StationPoints returns just the tour's hover positions, in order — the
// slice the runtime carries as Config.PlanStations.
func (r Result) StationPoints() []geom.Point {
	out := make([]geom.Point, len(r.Stations))
	for i, st := range r.Stations {
		out[i] = st.Pos
	}
	return out
}

// Hash fingerprints the plan for provenance: any change to the planner,
// the tour, or its energy accounting changes the hash.
func (r Result) Hash() uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d|%d|%d|%g|%g|%g", r.Planner, len(r.Stations),
		r.Covered, r.Total, r.PathLengthM, r.FlightS, r.EnergyJ)
	for _, st := range r.Stations {
		fmt.Fprintf(h, "|%g,%g,%g:%d:%g", st.Pos.X, st.Pos.Y, st.Pos.Z, st.NewTags, st.DwellS)
	}
	return h.Sum64()
}

// String summarizes the plan.
func (r Result) String() string {
	return fmt.Sprintf("plan[%s: %d stations, %d/%d tags, %.0f m, %.0f J, %.2f J/tag]",
		r.Planner, len(r.Stations), r.Covered, r.Total, r.PathLengthM, r.EnergyJ, r.EnergyPerTagJ)
}

// Planner is the common optimizer interface. Implementations must be
// deterministic in the Scenario.
type Planner interface {
	Name() string
	Plan(ctx context.Context, s Scenario) (Result, error)
}

// Planners returns every registered implementation.
func Planners() []Planner { return []Planner{Greedy{}, CoverageAware{}} }

// ByName resolves a planner from its Name (with "coverage" accepted as
// shorthand for coverage-aware).
func ByName(name string) (Planner, error) {
	for _, p := range Planners() {
		if p.Name() == name {
			return p, nil
		}
	}
	if name == "coverage" {
		return CoverageAware{}, nil
	}
	return nil, fmt.Errorf("plan: unknown planner %q (have greedy, coverage-aware)", name)
}

// coverage is the predicted link-budget matrix: which tags each lattice
// candidate would serve.
type coverage struct {
	cands []geom.Point
	// covers[ci] lists tag indices candidate ci serves; tagCovers[ti]
	// lists candidates serving tag ti.
	covers    [][]int
	tagCovers [][]int
}

// buildCoverage predicts per-candidate coverage with the sim's own link
// budget: a nominal relay (fixed probe seed, no shadowing — shadowing is
// a per-trial draw, not something a planner can know in advance) is
// moved across the lattice and every tag's predicted budget is
// thresholded at the constraint's SNR margin.
func buildCoverage(s Scenario) *coverage {
	cov := &coverage{cands: s.Constraints.Candidates()}
	cov.covers = make([][]int, len(cov.cands))
	cov.tagCovers = make([][]int, len(s.Tags))
	d := sim.New(sim.Config{
		Scene:              s.Scene,
		Freq:               s.FreqHz,
		ReaderPos:          s.ReaderPos,
		UseRelay:           true,
		RelayPos:           cov.cands[0],
		GroundReflectivity: 0.3,
	}, probeSeed)
	for i, p := range s.Tags {
		d.AddTag(epc.NewEPC96(0x9A11, uint16(i>>16), uint16(i), 0, 0, 0), p)
	}
	for ci, c := range cov.cands {
		d.MoveRelay(c)
		for ti, t := range d.Tags {
			b := d.LinkBudget(t)
			if b.Powered && b.RelayStable && b.SNRdB >= s.Constraints.MinTagSNRdB {
				cov.covers[ci] = append(cov.covers[ci], ti)
				cov.tagCovers[ti] = append(cov.tagCovers[ti], ci)
			}
		}
	}
	return cov
}

// solve is the shared pipeline both planners run under the plan.solve
// span: validate, predict coverage, let the algorithm pick the tour,
// then price it.
func solve(ctx context.Context, name string, s Scenario,
	algo func(s Scenario, cov *coverage) []Station) (Result, error) {
	_, span := obs.StartSpan(ctx, "plan.solve")
	defer span.End()
	span.Str("planner", name)
	if err := s.Validate(); err != nil {
		span.Str("error", err.Error())
		return Result{}, err
	}
	s = s.withDefaults()
	cov := buildCoverage(s)
	stations := algo(s, cov)
	res, err := price(name, s, stations)
	if err != nil {
		span.Str("error", err.Error())
		return Result{}, err
	}
	span.Int("stations", int64(len(res.Stations)))
	span.Int("covered", int64(res.Covered))
	span.Int("tags", int64(res.Total))
	span.Float("energy_j", res.EnergyJ)
	span.Float("energy_per_tag_j", res.EnergyPerTagJ)
	return res, nil
}

// price turns a tour into its energy accounting: transit + dwell airtime
// across the battery schedule (with any known sag replayed through
// drone.ExecuteWithSag), times the platform's power draw.
func price(name string, s Scenario, stations []Station) (Result, error) {
	res := Result{Planner: name, Stations: stations, Total: len(s.Tags), Seed: s.Seed}
	pts := []geom.Point{s.Start}
	for _, st := range stations {
		res.Covered += st.NewTags
		pts = append(pts, st.Pos)
	}
	var dwellS float64
	for _, st := range stations {
		dwellS += st.DwellS
	}
	for i := 1; i < len(pts); i++ {
		res.PathLengthM += pts[i-1].Dist(pts[i])
	}
	res.FlightS = res.PathLengthM/s.Platform.SpeedMS + dwellS
	pl := drone.Plan{
		Trajectory:  geom.Trajectory{Points: pts},
		PathLengthM: res.PathLengthM,
		FlightTime:  time.Duration(res.FlightS * float64(time.Second)),
		AreaM2:      (s.Constraints.X1 - s.Constraints.X0) * (s.Constraints.Y1 - s.Constraints.Y0),
	}
	pl.Sorties = int(math.Ceil(res.FlightS / s.Endurance.FlightTime.Seconds()))
	if pl.Sorties < 1 {
		pl.Sorties = 1
	}
	pl.GroundTime = time.Duration(pl.Sorties-1) * s.Endurance.SwapTime
	pl.TotalTime = pl.FlightTime + pl.GroundTime
	deg, err := pl.ExecuteWithSag(s.Endurance, s.Sags...)
	if err != nil {
		return Result{}, fmt.Errorf("plan: battery-sag replay: %w", err)
	}
	res.Sorties = pl.Sorties + deg.ExtraSorties
	res.LostAirtimeS = deg.LostAirtime.Seconds()
	res.EnergyJ = s.Power.EnergyJ(res.FlightS + res.LostAirtimeS)
	if res.Covered > 0 {
		res.EnergyPerTagJ = res.EnergyJ / float64(res.Covered)
	} else {
		res.EnergyPerTagJ = math.Inf(1)
	}
	return res, nil
}
