package plan

import (
	"math"
	"testing"

	"rfly/internal/geom"
	"rfly/internal/world"
)

// FuzzScenarioConfig throws arbitrary scenario knobs — plan constraints
// on one side, jammer parameters on the other — at the two validation
// surfaces the scenario engine trusts. The oracle is one-sided, like
// FuzzDaisyChainPlan's: anything provably uninterpretable (non-finite
// fields, inverted regions, empty duty cycles, out-of-range band areas,
// runaway lattices) must be rejected with an error, never a panic; and
// anything accepted must behave: the lattice is non-empty, bounded, and
// inside the region; the jammer's band is a non-empty slice of
// 902–928 MHz and its duty gating is periodic.
func FuzzScenarioConfig(f *testing.F) {
	// The warehouse-fixture constraints and the default jammer shapes.
	f.Add(3.0, 2.0, 27.0, 18.0, 3.0, 2.5, 3.0, 40.0, uint8(12), 10.0, 0.5, uint8(0), uint8(4))
	f.Add(0.0, 0.0, 10.0, 10.0, 1.0, 1.5, 0.0, 100.0, uint8(4), -20.0, 1.0, uint8(3), uint8(1))
	f.Add(5.0, 5.0, 4.0, 6.0, 1.0, 1.5, 0.0, 10.0, uint8(2), 0.0, 0.5, uint8(1), uint8(8)) // inverted region
	f.Add(0.0, 0.0, 500.0, 500.0, 0.2, 2.0, 0.0, 10.0, uint8(8), 0.0, 0.0, uint8(5), uint8(0))
	f.Add(math.Inf(1), 0.0, 10.0, 10.0, 1.0, 1.0, 0.0, 10.0, uint8(1), math.NaN(), 2.0, uint8(9), uint8(3))
	f.Fuzz(func(t *testing.T, x0, y0, x1, y1, spacing, alt, minSNR, readHz float64,
		maxStations uint8, jamTx, jamDuty float64, jamArea, jamPeriod uint8) {

		c := Constraints{
			X0: x0, Y0: y0, X1: x1, Y1: y1,
			SpacingM:    spacing,
			AltitudeM:   alt,
			MinTagSNRdB: minSNR,
			TagReadHz:   readHz,
			MaxStations: int(maxStations),
		}
		err := c.Validate()
		nonFinite := false
		for _, v := range []float64{x0, y0, x1, y1, spacing, alt, minSNR, readHz} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				nonFinite = true
			}
		}
		switch {
		case nonFinite, x1 <= x0, y1 <= y0, spacing < 0.1, maxStations == 0,
			readHz <= 0, minSNR < -30, minSNR > 60:
			if err == nil {
				t.Fatalf("provably invalid constraints accepted: %+v", c)
			}
		}
		if err == nil {
			cands := c.Candidates()
			if len(cands) == 0 || len(cands) > maxCandidates {
				t.Fatalf("accepted constraints produced lattice of %d", len(cands))
			}
			if len(cands) != c.latticeSize() {
				t.Fatalf("lattice %d != latticeSize %d", len(cands), c.latticeSize())
			}
			for _, p := range cands {
				if p.X < c.X0-1e-9 || p.X > c.X1+1e-9 || p.Y < c.Y0-1e-9 || p.Y > c.Y1+1e-9 {
					t.Fatalf("candidate %v escapes region %+v", p, c)
				}
			}
		}

		j := world.Jammer{
			Pos:         geom.P(x0, y0, alt),
			TxPowerDBm:  jamTx,
			BandArea:    int(jamArea),
			DutyCycle:   jamDuty,
			PeriodTicks: int(jamPeriod),
		}
		jerr := j.Validate()
		switch {
		case math.IsNaN(jamTx) || math.IsInf(jamTx, 0), nonFiniteP(j.Pos),
			int(jamArea) > world.NumBandAreas, jamDuty <= 0, jamDuty > 1,
			jamPeriod == 0, jamTx > 60:
			if jerr == nil {
				t.Fatalf("provably invalid jammer accepted: %+v", j)
			}
		}
		if jerr == nil {
			lo, hi := j.Band()
			if !(lo < hi) || lo < world.BandLowHz || hi > world.BandHighHz {
				t.Fatalf("accepted jammer has band [%g, %g)", lo, hi)
			}
			mid := (lo + hi) / 2
			if !j.CoversHz(mid) || j.OffsetFromHz(mid) != 0 {
				t.Fatalf("jammer does not cover its own band center")
			}
			if j.CoversHz(lo-1) || j.CoversHz(hi) {
				t.Fatalf("jammer covers outside its band")
			}
			for tick := -3; tick < 3*j.PeriodTicks; tick++ {
				if j.ActiveAt(tick) != j.ActiveAt(tick+j.PeriodTicks) {
					t.Fatalf("duty gating not periodic at tick %d: %+v", tick, j)
				}
			}
			on := 0
			for tick := 0; tick < j.PeriodTicks; tick++ {
				if j.ActiveAt(tick) {
					on++
				}
			}
			if on == 0 {
				t.Fatalf("accepted jammer never radiates: %+v", j)
			}
		}
	})
}

func nonFiniteP(p geom.Point) bool {
	for _, v := range []float64{p.X, p.Y, p.Z} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
	}
	return false
}
