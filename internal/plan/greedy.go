package plan

import (
	"context"
)

// Greedy is the nearest-uncovered baseline: repeatedly fly toward the
// nearest tag not yet inventoried and hover at the closest lattice
// candidate that covers it. It chases proximity, not efficiency — the
// tour it produces is the yardstick the coverage-aware planner must beat
// on energy per tag.
type Greedy struct{}

// Name implements Planner.
func (Greedy) Name() string { return "greedy" }

// Plan implements Planner.
func (Greedy) Plan(ctx context.Context, s Scenario) (Result, error) {
	return solve(ctx, "greedy", s, greedyTour)
}

func greedyTour(s Scenario, cov *coverage) []Station {
	covered := make([]bool, len(cov.tagCovers))
	dead := make([]bool, len(cov.tagCovers)) // provably unservable
	cur := s.Start
	var stations []Station
	for len(stations) < s.Constraints.MaxStations {
		// Nearest tag still wanting coverage (ties → lowest index).
		bt, btDist := -1, 0.0
		for ti, p := range s.Tags {
			if covered[ti] || dead[ti] {
				continue
			}
			if d := cur.Dist(p); bt == -1 || d < btDist {
				bt, btDist = ti, d
			}
		}
		if bt == -1 {
			break
		}
		// Closest candidate that covers it (ties → lowest index).
		bc, bcDist := -1, 0.0
		for _, ci := range cov.tagCovers[bt] {
			if d := cur.Dist(cov.cands[ci]); bc == -1 || d < bcDist {
				bc, bcDist = ci, d
			}
		}
		if bc == -1 {
			// No lattice point serves this tag; stop chasing it.
			dead[bt] = true
			continue
		}
		newTags := 0
		for _, ti := range cov.covers[bc] {
			if !covered[ti] {
				covered[ti] = true
				newTags++
			}
		}
		stations = append(stations, Station{
			Pos:     cov.cands[bc],
			NewTags: newTags,
			DwellS:  float64(newTags) / s.Constraints.TagReadHz,
		})
		cur = cov.cands[bc]
	}
	return stations
}
