package capture

import (
	"bytes"
	"context"
	"errors"
	"go/parser"
	"go/token"
	"math"
	"math/cmplx"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rfly/internal/geom"
	"rfly/internal/loc"
	"rfly/internal/signal"
)

const f900 = 915e6

func testHeader() Header {
	return Header{
		ChannelHz:  f900,
		Region:     loc.Region{X0: -2, Y0: 0.2, X1: 2, Y1: 3},
		Seed:       99,
		ConfigHash: 0xDEADBEEFCAFE,
	}
}

// synthRecords builds ideal disentangled channels along an aperture line
// for a tag at tagPos: h = amp·e^{−j4πf·d/c}, the same model the loc
// package's own tests use.
func synthRecords(n int, sortie int, tagPos geom.Point) []Record {
	k := 4 * math.Pi * f900 / signal.C
	recs := make([]Record, 0, n)
	for i := 0; i < n; i++ {
		x := -1.0 + 2.0*float64(i)/float64(n-1)
		p := geom.P(x, 0, 0.8)
		d := p.Dist(tagPos)
		amp := 1 / (d * d)
		recs = append(recs, Record{
			T:     float64(sortie*25) + float64(i)/float64(n+1),
			Pos:   p,
			H:     cmplx.Rect(amp, -k*d),
			SNRdB: 18.5,
		})
	}
	return recs
}

func TestLogRoundTrip(t *testing.T) {
	ctx := context.Background()
	tag := geom.P(0.5, 1.5, 0)
	l := NewLog(testHeader())
	s1 := synthRecords(8, 1, tag)
	s1[3].Unlocked = true
	s1[4].SNRdB = math.NaN()
	l.AppendSegmentCtx(ctx, 1, s1)
	l.AppendSegmentCtx(ctx, 2, nil) // empty sortie: no segment
	l.AppendSegmentCtx(ctx, 3, synthRecords(5, 3, tag))

	if got := l.Segments(); got != 2 {
		t.Fatalf("Segments() = %d, want 2", got)
	}
	if got := l.Records(); got != 13 {
		t.Fatalf("Records() = %d, want 13", got)
	}

	r, err := OpenLog(l.Snapshot())
	if err != nil {
		t.Fatalf("OpenLog: %v", err)
	}
	if r.Header() != testHeader() {
		t.Fatalf("header round-trip: got %+v", r.Header())
	}
	if r.NumSegments() != 2 || r.Records() != 13 || r.LastSortie() != 3 {
		t.Fatalf("index: %d segments, %d records, last sortie %d",
			r.NumSegments(), r.Records(), r.LastSortie())
	}
	seg := r.Segment(0)
	if seg.Sortie() != 1 || seg.Count() != 8 || seg.BaseSeq() != 0 {
		t.Fatalf("segment 0 frame: sortie %d count %d base %d", seg.Sortie(), seg.Count(), seg.BaseSeq())
	}
	if got := r.Segment(1).BaseSeq(); got != 8 {
		t.Fatalf("segment 1 base seq = %d, want 8", got)
	}
	for i, want := range s1 {
		v := seg.Record(i)
		if v.Pos() != want.Pos || v.H() != want.H || v.T() != want.T || v.Unlocked() != want.Unlocked {
			t.Fatalf("record %d round-trip mismatch", i)
		}
		if math.Float64bits(v.SNRdB()) != math.Float64bits(want.SNRdB) {
			t.Fatalf("record %d SNR bits changed (NaN payload must survive)", i)
		}
	}
	m := seg.Record(3).Measurement()
	if !m.Unlocked || m.Pos != s1[3].Pos {
		t.Fatalf("Measurement() dropped fields: %+v", m)
	}
	if got := len(r.Measurements()); got != 13 {
		t.Fatalf("Measurements() len = %d", got)
	}
}

// TestZeroCopyReadPath pins the tentpole property: iterating every
// record through the view accessors allocates nothing.
func TestZeroCopyReadPath(t *testing.T) {
	ctx := context.Background()
	tag := geom.P(0.5, 1.5, 0)
	l := NewLog(testHeader())
	for s := 1; s <= 4; s++ {
		l.AppendSegmentCtx(ctx, s, synthRecords(16, s, tag))
	}
	r, err := OpenLog(l.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var sink complex128
	var locked int
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < r.NumSegments(); i++ {
			seg := r.Segment(i)
			for j := 0; j < seg.Count(); j++ {
				v := seg.Record(j)
				sink += v.H() * complex(v.T()-v.Pos().X, 0)
				if !v.Unlocked() {
					locked++
				}
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("record read path allocated %.1f times per pass, want 0", allocs)
	}
	if sink == 0 || locked == 0 {
		t.Fatal("read loop optimized away")
	}
}

func TestResumeContinuesSequence(t *testing.T) {
	ctx := context.Background()
	tag := geom.P(0.5, 1.5, 0)
	l := NewLog(testHeader())
	l.AppendSegmentCtx(ctx, 1, synthRecords(6, 1, tag))
	snap := l.Snapshot()

	l2, err := Resume(snap)
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	l2.AppendSegmentCtx(ctx, 2, synthRecords(4, 2, tag))
	r, err := OpenLog(l2.Snapshot())
	if err != nil {
		t.Fatalf("OpenLog after resume: %v", err)
	}
	if r.NumSegments() != 2 || r.Records() != 10 || r.Segment(1).BaseSeq() != 6 {
		t.Fatalf("resume did not continue the sequence: %d segs, %d recs, base %d",
			r.NumSegments(), r.Records(), r.Segment(1).BaseSeq())
	}

	snap[len(snap)-1] ^= 0x40
	if _, err := Resume(snap); !errors.Is(err, ErrInvalidLog) {
		t.Fatalf("Resume on corrupt bytes = %v, want ErrInvalidLog", err)
	}
}

// TestTailReplication exercises the federation increment protocol: a
// replica that holds the log through sortie k appends Tail(k) verbatim
// and ends up with a valid log equal to the primary's.
func TestTailReplication(t *testing.T) {
	ctx := context.Background()
	tag := geom.P(0.5, 1.5, 0)
	l := NewLog(testHeader())
	l.AppendSegmentCtx(ctx, 1, synthRecords(6, 1, tag))
	base := l.Snapshot()
	l.AppendSegmentCtx(ctx, 3, synthRecords(4, 3, tag))
	l.AppendSegmentCtx(ctx, 4, synthRecords(5, 4, tag))
	full := l.Snapshot()

	r, err := OpenLog(full)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r.Tail(-1), full) {
		t.Fatal("Tail(-1) must return the whole log")
	}
	if r.Tail(4) != nil {
		t.Fatal("Tail past the newest sortie must be empty")
	}
	// Sortie 2 committed nothing: the tail after 1 and after 2 coincide.
	if !bytes.Equal(r.Tail(1), r.Tail(2)) {
		t.Fatal("tail across an empty sortie must be stable")
	}
	replica := append(append([]byte(nil), base...), r.Tail(1)...)
	if !bytes.Equal(replica, full) {
		t.Fatal("base + tail must reassemble the primary's log")
	}
	if _, err := OpenLog(replica); err != nil {
		t.Fatalf("reassembled replica invalid: %v", err)
	}
}

func TestAppendMonotoneGuard(t *testing.T) {
	ctx := context.Background()
	tag := geom.P(0.5, 1.5, 0)
	l := NewLog(testHeader())
	l.AppendSegmentCtx(ctx, 2, synthRecords(4, 2, tag))
	l.AppendSegmentCtx(ctx, 2, synthRecords(4, 2, tag)) // duplicate: dropped
	l.AppendSegmentCtx(ctx, 1, synthRecords(4, 1, tag)) // regression: dropped
	if got := l.Segments(); got != 1 {
		t.Fatalf("non-monotone appends must drop: %d segments", got)
	}
	if _, err := OpenLog(l.Snapshot()); err != nil {
		t.Fatalf("log poisoned by dropped appends: %v", err)
	}
}

func TestDecodeRejections(t *testing.T) {
	ctx := context.Background()
	tag := geom.P(0.5, 1.5, 0)
	l := NewLog(testHeader())
	l.AppendSegmentCtx(ctx, 1, synthRecords(6, 1, tag))
	good := l.Snapshot()
	segStart := headerSize

	mut := func(f func(b []byte)) []byte {
		b := append([]byte(nil), good...)
		f(b)
		return b
	}
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrLogTruncated},
		{"short header", good[:headerSize-1], ErrLogTruncated},
		{"bad magic", mut(func(b []byte) { b[0] = 'X' }), ErrInvalidLog},
		{"bad header version", mut(func(b []byte) { b[4] = 0xFF }), ErrInvalidLog},
		{"header reserved", mut(func(b []byte) { b[6] = 1 }), ErrInvalidLog},
		{"header CRC flip", mut(func(b []byte) { b[10] ^= 0x01 }), ErrLogCRC},
		{"segment magic", mut(func(b []byte) { b[segStart] = 'X' }), ErrInvalidLog},
		{"segment version", mut(func(b []byte) { b[segStart+4] = 9 }), ErrInvalidLog},
		{"segment reserved", mut(func(b []byte) { b[segStart+6] = 1 }), ErrInvalidLog},
		{"truncated frame", good[:len(good)-RecordSize], ErrLogTruncated},
		{"segment CRC flip", mut(func(b []byte) { b[len(b)-1] ^= 0x80 }), ErrLogCRC},
		{"undefined flag bits", mut(func(b []byte) { b[segStart+segHdrSize+56] |= 0x02 }), ErrInvalidLog},
		{"nonzero record pad", mut(func(b []byte) { b[segStart+segHdrSize+60] = 7 }), ErrInvalidLog},
		{"trailing garbage", append(append([]byte(nil), good...), 0xAB), ErrLogTruncated},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := OpenLog(tc.data)
			if err == nil {
				t.Fatal("accepted corrupt log")
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, want %v", err, tc.want)
			}
		})
	}

	t.Run("degenerate header region", func(t *testing.T) {
		h := testHeader()
		h.Region.X1 = h.Region.X0
		if _, err := OpenLog(NewLog(h).Snapshot()); !errors.Is(err, ErrInvalidLog) {
			t.Fatalf("degenerate region accepted: %v", err)
		}
	})
	t.Run("non-monotone sortie", func(t *testing.T) {
		b := append([]byte(nil), good...)
		b = appendSegment(b, 1, 6, synthRecords(3, 1, tag))
		if _, err := OpenLog(b); !errors.Is(err, ErrInvalidLog) {
			t.Fatalf("repeated sortie accepted: %v", err)
		}
	})
	t.Run("base seq discontinuity", func(t *testing.T) {
		b := append([]byte(nil), good...)
		b = appendSegment(b, 2, 7, synthRecords(3, 2, tag))
		if _, err := OpenLog(b); !errors.Is(err, ErrInvalidLog) {
			t.Fatalf("broken sequence accepted: %v", err)
		}
	})
}

// TestNoSimOnReplayPath pins the acceptance criterion that replay needs
// no simulator: neither this package nor cmd/rfly-replay may import the
// sim or runtime packages.
func TestNoSimOnReplayPath(t *testing.T) {
	dirs := []string{".", filepath.Join("..", "..", "cmd", "rfly-replay")}
	banned := map[string]bool{"rfly/internal/sim": true, "rfly/internal/runtime": true}
	for _, dir := range dirs {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("read %s: %v", dir, err)
		}
		for _, ent := range entries {
			name := ent.Name()
			if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			path := filepath.Join(dir, name)
			f, err := parser.ParseFile(token.NewFileSet(), path, nil, parser.ImportsOnly)
			if err != nil {
				t.Fatalf("parse %s: %v", path, err)
			}
			for _, imp := range f.Imports {
				p := strings.Trim(imp.Path.Value, `"`)
				if banned[p] {
					t.Errorf("%s imports %s: the replay path must reconstruct missions from the log alone", path, p)
				}
			}
		}
	}
}
