// Package capture is RFly's zero-copy capture plane: an append-only
// columnar log of a mission's SAR measurement stream, written
// incrementally by the runtime engine at sortie commits and read back
// without re-materializing records.
//
// The format is deliberately dumb, in the relay-core zero-decode
// tradition (forward bytes, never re-materialize):
//
//	header   "RCAP" | u16 version | u16 reserved(0) | f64 channel_hz |
//	         4×f64 region (x0 y0 x1 y1) | u64 seed | u64 config_hash |
//	         u32 crc32(all preceding header bytes)
//	segment  "RSEG" | u16 version | u16 reserved(0) | u32 sortie |
//	         u32 count | u64 base_seq | count × 64-byte records |
//	         u32 crc32(all preceding segment bytes)
//	record   f64 t | f64 pos_x | f64 pos_y | f64 pos_z |
//	         f64 h_re | f64 h_im | f64 snr_db |
//	         u8 flags (bit0 = unlocked) | 7 × u8 reserved(0)
//
// Everything is little-endian and fixed-width, so a record is readable
// in place: RecordView and SegmentView are plain subslices of the log
// bytes with accessor methods — the read path allocates nothing per
// record. Segments are one-per-committed-sortie (empty sorties write
// nothing), sealed with their own CRC so a segment can be shipped,
// appended, or validated without touching its neighbors — exactly what
// the federation tier's incremental segment replication does. The
// header carries the solve parameters the live engine derived from its
// mission config (carrier, search region, seed, config fingerprint),
// which is what lets Replay re-solve the mission from the log alone.
//
// Decoding is strict: reserved bytes must be zero and flags may carry
// only defined bits, so every accepted frame re-encodes to exactly its
// input bytes (one canonical form per version — the fuzz target holds
// this).
package capture

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"rfly/internal/geom"
	"rfly/internal/loc"
)

const (
	headerMagic = "RCAP"
	segMagic    = "RSEG"

	// Version is the capture-log format version.
	Version = uint16(1)

	// RecordSize is the fixed width of one columnar record.
	RecordSize = 64

	headerSize = 4 + 2 + 2 + 8 + 4*8 + 8 + 8 + 4
	segHdrSize = 4 + 2 + 2 + 4 + 4 + 8

	// maxSegRecords bounds a segment's declared record count so a
	// corrupted length cannot balloon a read (the frame must actually
	// contain the bytes anyway, but the bound keeps the arithmetic
	// overflow-free on 32-bit ints).
	maxSegRecords = 1 << 20
)

// Typed rejection classes. Every decode failure wraps ErrInvalidLog so
// callers holding bytes of unknown provenance (the fuzz harness, a
// replica fetched over HTTP) can classify without string matching.
var (
	// ErrInvalidLog is the root class: the bytes are not a usable
	// capture log.
	ErrInvalidLog = errors.New("capture: invalid log")
	// ErrLogTruncated marks a frame that ends before its declared
	// content (torn write).
	ErrLogTruncated = fmt.Errorf("log truncated: %w", ErrInvalidLog)
	// ErrLogCRC marks a segment or header checksum mismatch.
	ErrLogCRC = fmt.Errorf("log CRC mismatch: %w", ErrInvalidLog)
)

// Header identifies a capture log and carries the solve parameters the
// live engine used, so a replay can rebuild the identical localizer
// configuration without the runtime or sim packages.
type Header struct {
	// ChannelHz is the mission's carrier (loc.Config.Freq).
	ChannelHz float64
	// Region is the live solve's search rectangle.
	Region loc.Region
	// Seed is the mission seed (provenance only; replay never draws
	// randomness).
	Seed uint64
	// ConfigHash fingerprints the mission config the log was captured
	// under, so the checkpoint codec can refuse a log grafted onto a
	// different mission.
	ConfigHash uint64
}

// valid rejects headers no live engine writes: the solve needs a
// positive finite carrier and a non-degenerate search rectangle.
func (h Header) valid() error {
	if !(h.ChannelHz > 0) || math.IsInf(h.ChannelHz, 0) {
		return fmt.Errorf("capture: header carrier %g: %w", h.ChannelHz, ErrInvalidLog)
	}
	r := h.Region
	for _, v := range [...]float64{r.X0, r.Y0, r.X1, r.Y1} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("capture: header region not finite: %w", ErrInvalidLog)
		}
	}
	if r.X1 <= r.X0 || r.Y1 <= r.Y0 {
		return fmt.Errorf("capture: header region [%g,%g]×[%g,%g] degenerate: %w",
			r.X0, r.X1, r.Y0, r.Y1, ErrInvalidLog)
	}
	return nil
}

// Record is one measurement in writer-friendly struct form. The columnar
// encoding round-trips float bits exactly (NaN payloads included), so a
// record is whatever the engine observed, not a normalization of it.
type Record struct {
	// T is the capture time on the global mission-tick clock (fractional
	// for points flown inside one landing window).
	T float64
	// Pos is the relay's OptiTrack-measured position at the capture.
	Pos geom.Point
	// H is the disentangled channel (Eq. 10).
	H complex128
	// SNRdB is the capture SNR; NaN when the path that produced the
	// record observes only a sortie aggregate.
	SNRdB float64
	// Unlocked marks a capture taken with degraded carrier lock.
	Unlocked bool
}

// Measurement converts the record to the localizer's input form.
func (r Record) Measurement() loc.Measurement {
	return loc.Measurement{Pos: r.Pos, H: r.H, Unlocked: r.Unlocked}
}

func appendHeader(buf []byte, h Header) []byte {
	buf = append(buf, headerMagic...)
	buf = binary.LittleEndian.AppendUint16(buf, Version)
	buf = binary.LittleEndian.AppendUint16(buf, 0)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(h.ChannelHz))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(h.Region.X0))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(h.Region.Y0))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(h.Region.X1))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(h.Region.Y1))
	buf = binary.LittleEndian.AppendUint64(buf, h.Seed)
	buf = binary.LittleEndian.AppendUint64(buf, h.ConfigHash)
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf[len(buf)-(headerSize-4):]))
}

func appendRecord(buf []byte, r Record) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(r.T))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(r.Pos.X))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(r.Pos.Y))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(r.Pos.Z))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(real(r.H)))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(imag(r.H)))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(r.SNRdB))
	var flags byte
	if r.Unlocked {
		flags = 1
	}
	return append(buf, flags, 0, 0, 0, 0, 0, 0, 0)
}

// appendSegment frames and seals one segment.
func appendSegment(buf []byte, sortie int, baseSeq uint64, recs []Record) []byte {
	start := len(buf)
	buf = append(buf, segMagic...)
	buf = binary.LittleEndian.AppendUint16(buf, Version)
	buf = binary.LittleEndian.AppendUint16(buf, 0)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(sortie))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(recs)))
	buf = binary.LittleEndian.AppendUint64(buf, baseSeq)
	for _, r := range recs {
		buf = appendRecord(buf, r)
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf[start:]))
}

// RecordView is a zero-copy view of one 64-byte record inside a sealed
// segment. Accessors read the bytes in place; nothing is allocated.
type RecordView []byte

func (v RecordView) f64(off int) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(v[off:]))
}

// T is the capture time on the global mission-tick clock.
func (v RecordView) T() float64 { return v.f64(0) }

// Pos is the relay's measured position at the capture.
func (v RecordView) Pos() geom.Point { return geom.P(v.f64(8), v.f64(16), v.f64(24)) }

// H is the disentangled channel.
func (v RecordView) H() complex128 { return complex(v.f64(32), v.f64(40)) }

// SNRdB is the capture SNR (NaN when unknown).
func (v RecordView) SNRdB() float64 { return v.f64(48) }

// Unlocked reports whether the capture was taken with degraded lock.
func (v RecordView) Unlocked() bool { return v[56]&1 != 0 }

// Measurement converts the view to the localizer's input form.
func (v RecordView) Measurement() loc.Measurement {
	return loc.Measurement{Pos: v.Pos(), H: v.H(), Unlocked: v.Unlocked()}
}

// SegmentView is a zero-copy view of one sealed segment (framing, its
// records, and the CRC trailer). It is only ever produced by a
// validating decode, so accessors may index without re-checking bounds.
type SegmentView []byte

// Sortie is the committed sortie count when the segment was sealed
// (1-based: the first committed sortie writes segment sortie 1).
func (s SegmentView) Sortie() int { return int(binary.LittleEndian.Uint32(s[8:])) }

// Count is the number of records in the segment.
func (s SegmentView) Count() int { return int(binary.LittleEndian.Uint32(s[12:])) }

// BaseSeq is the log-wide sequence number of the segment's first record.
func (s SegmentView) BaseSeq() uint64 { return binary.LittleEndian.Uint64(s[16:]) }

// Record returns the i-th record view (a subslice; no allocation).
func (s SegmentView) Record(i int) RecordView {
	off := segHdrSize + i*RecordSize
	return RecordView(s[off : off+RecordSize])
}

// Bytes returns the sealed segment bytes verbatim — the unit the
// replication path forwards without re-encoding.
func (s SegmentView) Bytes() []byte { return s }

// decodeRecordStrict enforces the canonical form: reserved pad bytes
// zero, flags limited to defined bits.
func decodeRecordStrict(v RecordView) error {
	if v[56]&^1 != 0 {
		return fmt.Errorf("capture: record flags %02x carry undefined bits: %w", v[56], ErrInvalidLog)
	}
	for _, b := range v[57:RecordSize] {
		if b != 0 {
			return fmt.Errorf("capture: record reserved bytes not zero: %w", ErrInvalidLog)
		}
	}
	return nil
}

// DecodeSegment validates the framed segment at the head of data and
// returns its view plus the remaining bytes. It refuses bad magic,
// unknown versions, nonzero reserved fields, truncated frames, and CRC
// mismatches — every accepted segment is in canonical form (re-encoding
// its fields and records reproduces the input bytes exactly).
func DecodeSegment(data []byte) (SegmentView, []byte, error) {
	if len(data) < segHdrSize+4 {
		return nil, nil, fmt.Errorf("capture: segment frame %d bytes short of header: %w", len(data), ErrLogTruncated)
	}
	if string(data[:4]) != segMagic {
		return nil, nil, fmt.Errorf("capture: bad segment magic %q: %w", data[:4], ErrInvalidLog)
	}
	if v := binary.LittleEndian.Uint16(data[4:]); v != Version {
		return nil, nil, fmt.Errorf("capture: unsupported segment version %d: %w", v, ErrInvalidLog)
	}
	if rsv := binary.LittleEndian.Uint16(data[6:]); rsv != 0 {
		return nil, nil, fmt.Errorf("capture: segment reserved field %04x not zero: %w", rsv, ErrInvalidLog)
	}
	count := int(binary.LittleEndian.Uint32(data[12:]))
	if count == 0 || count > maxSegRecords {
		return nil, nil, fmt.Errorf("capture: segment record count %d out of range: %w", count, ErrInvalidLog)
	}
	total := segHdrSize + count*RecordSize + 4
	if len(data) < total {
		return nil, nil, fmt.Errorf("capture: segment declares %d records but frame holds %d bytes: %w",
			count, len(data), ErrLogTruncated)
	}
	seg := SegmentView(data[:total])
	body, trailer := seg[:total-4], seg[total-4:]
	if got, want := binary.LittleEndian.Uint32(trailer), crc32.ChecksumIEEE(body); got != want {
		return nil, nil, fmt.Errorf("capture: segment CRC %08x != computed %08x: %w", got, want, ErrLogCRC)
	}
	for i := 0; i < count; i++ {
		if err := decodeRecordStrict(seg.Record(i)); err != nil {
			return nil, nil, err
		}
	}
	return seg, data[total:], nil
}

// decodeHeader validates the log header at the head of data.
func decodeHeader(data []byte) (Header, []byte, error) {
	if len(data) < headerSize {
		return Header{}, nil, fmt.Errorf("capture: log %d bytes short of header: %w", len(data), ErrLogTruncated)
	}
	if string(data[:4]) != headerMagic {
		return Header{}, nil, fmt.Errorf("capture: bad log magic %q: %w", data[:4], ErrInvalidLog)
	}
	if v := binary.LittleEndian.Uint16(data[4:]); v != Version {
		return Header{}, nil, fmt.Errorf("capture: unsupported log version %d: %w", v, ErrInvalidLog)
	}
	if rsv := binary.LittleEndian.Uint16(data[6:]); rsv != 0 {
		return Header{}, nil, fmt.Errorf("capture: header reserved field %04x not zero: %w", rsv, ErrInvalidLog)
	}
	body, trailer := data[:headerSize-4], data[headerSize-4:headerSize]
	if got, want := binary.LittleEndian.Uint32(trailer), crc32.ChecksumIEEE(body); got != want {
		return Header{}, nil, fmt.Errorf("capture: header CRC %08x != computed %08x: %w", got, want, ErrLogCRC)
	}
	f := func(off int) float64 {
		return math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
	}
	h := Header{
		ChannelHz:  f(8),
		Region:     loc.Region{X0: f(16), Y0: f(24), X1: f(32), Y1: f(40)},
		Seed:       binary.LittleEndian.Uint64(data[48:]),
		ConfigHash: binary.LittleEndian.Uint64(data[56:]),
	}
	if err := h.valid(); err != nil {
		return Header{}, nil, err
	}
	return h, data[headerSize:], nil
}

// Reader is a validated, zero-copy index over a complete capture log.
// It holds the log bytes and per-segment offsets; record access never
// allocates.
type Reader struct {
	header  Header
	data    []byte
	segOff  []int // byte offset of each sealed segment
	segLen  []int
	records uint64
}

// OpenLog validates data as a complete capture log (header plus zero or
// more sealed segments) and returns a reader over it. Beyond per-frame
// validation it checks the log-wide invariants the writer maintains:
// sortie numbers strictly increase and each segment's base sequence
// continues the running record count.
func OpenLog(data []byte) (*Reader, error) {
	h, rest, err := decodeHeader(data)
	if err != nil {
		return nil, err
	}
	r := &Reader{header: h, data: data}
	off := headerSize
	lastSortie := 0
	for len(rest) > 0 {
		seg, tail, err := DecodeSegment(rest)
		if err != nil {
			return nil, err
		}
		if seg.Sortie() <= lastSortie {
			return nil, fmt.Errorf("capture: segment sortie %d not after %d: %w",
				seg.Sortie(), lastSortie, ErrInvalidLog)
		}
		if seg.BaseSeq() != r.records {
			return nil, fmt.Errorf("capture: segment base seq %d != running record count %d: %w",
				seg.BaseSeq(), r.records, ErrInvalidLog)
		}
		lastSortie = seg.Sortie()
		r.segOff = append(r.segOff, off)
		r.segLen = append(r.segLen, len(seg))
		r.records += uint64(seg.Count())
		off += len(seg)
		rest = tail
	}
	return r, nil
}

// Header returns the log's identity block.
func (r *Reader) Header() Header { return r.header }

// NumSegments returns how many sealed segments the log holds.
func (r *Reader) NumSegments() int { return len(r.segOff) }

// Records returns the total record count across all segments.
func (r *Reader) Records() uint64 { return r.records }

// Segment returns the i-th segment view (a subslice; no allocation).
func (r *Reader) Segment(i int) SegmentView {
	return SegmentView(r.data[r.segOff[i] : r.segOff[i]+r.segLen[i]])
}

// LastSortie returns the sortie count of the newest segment (0 when the
// log holds none).
func (r *Reader) LastSortie() int {
	if len(r.segOff) == 0 {
		return 0
	}
	return r.Segment(len(r.segOff) - 1).Sortie()
}

// Tail returns the raw bytes of every segment committed after the given
// sortie count — the increment the federation tier ships to a replica
// that already holds the log through afterSortie. Segments are stored in
// sortie order, so the tail is one contiguous subslice (no copy). A
// negative afterSortie returns the full log, header included.
func (r *Reader) Tail(afterSortie int) []byte {
	if afterSortie < 0 {
		return r.data
	}
	for i := range r.segOff {
		if r.Segment(i).Sortie() > afterSortie {
			return r.data[r.segOff[i]:]
		}
	}
	return nil
}

// Measurements flattens every record into localizer input order — the
// exact stream the live engine fed its solver. (This is the one reader
// path that allocates, for callers that need the whole history at once;
// the replay solve itself feeds per-segment batches.)
func (r *Reader) Measurements() []loc.Measurement {
	out := make([]loc.Measurement, 0, r.records)
	for i := 0; i < r.NumSegments(); i++ {
		seg := r.Segment(i)
		for j := 0; j < seg.Count(); j++ {
			out = append(out, seg.Record(j).Measurement())
		}
	}
	return out
}
