package capture

import (
	"context"
	"fmt"

	"rfly/internal/loc"
	"rfly/internal/obs"
)

// Deterministic mission replay: reconstruct the measurement stream from
// the capture log alone — no sim, no runtime — and re-feed the
// streaming solver. Replayed at the live settings the solve is
// bit-identical to the mission's, because (a) the log's segments are
// exactly the per-sortie-commit batches the engine fed its solver, in
// order, and (b) loc.StreamSolver accumulates each grid cell in
// measurement order regardless of batch chopping or worker count (the
// equivalence the perf harness gates). Replayed with different
// grid/robustness settings it answers the paper's Fig. 12 question —
// how would this flight have solved under other parameters — in
// milliseconds instead of a full sim re-run.

// ReplayOptions override the live solve parameters recorded in the log
// header. Zero values keep the live defaults.
type ReplayOptions struct {
	// CoarseRes/FineRes override the grid steps (meters).
	CoarseRes float64
	FineRes   float64
	// Workers overrides the grid-search pool (0 = GOMAXPROCS); results
	// are bit-identical for every worker count.
	Workers int
	// Robust selects the lock-rejecting solver the live engine runs.
	// Set it (LiveOptions does) to match a mission solve bit for bit;
	// clear it to integrate every capture, unlocked ones included.
	Robust bool
	// Region, when non-nil, overrides the search rectangle.
	Region *loc.Region
}

// LiveOptions are the options that reproduce the live mission solve
// exactly: robust, default grid, header region.
func LiveOptions() ReplayOptions { return ReplayOptions{Robust: true} }

// ReplayResult is a replayed solve plus the log provenance it came from.
type ReplayResult struct {
	*loc.RobustResult
	Header   Header
	Segments int
	Records  uint64
}

// Config resolves the localizer configuration a replay of this log
// would use: the live defaults rebuilt from the header, with opts
// applied on top.
func (h Header) Config(opts ReplayOptions) loc.Config {
	cfg := loc.DefaultConfig(h.ChannelHz)
	region := h.Region
	if opts.Region != nil {
		region = *opts.Region
	}
	cfg.Region = &region
	if opts.CoarseRes > 0 {
		cfg.CoarseRes = opts.CoarseRes
	}
	if opts.FineRes > 0 {
		cfg.FineRes = opts.FineRes
	}
	if opts.Workers > 0 {
		cfg.Workers = opts.Workers
	}
	return cfg
}

// Replay re-solves a mission from its capture log bytes. The stream is
// fed segment by segment — the live commit boundaries — and finalized
// once; the whole solve runs under a "replay.solve" span.
func Replay(ctx context.Context, data []byte, opts ReplayOptions) (*ReplayResult, error) {
	ctx, span := obs.StartSpan(ctx, "replay.solve")
	defer span.End()
	r, err := OpenLog(data)
	if err != nil {
		return nil, err
	}
	span.Int("segments", int64(r.NumSegments())).
		Int("records", int64(r.Records())).
		Bool("robust", opts.Robust)
	cfg := r.Header().Config(opts)
	var solver *loc.StreamSolver
	if opts.Robust {
		solver, err = loc.NewRobustStreamSolver(cfg)
	} else {
		solver, err = loc.NewStreamSolver(cfg)
	}
	if err != nil {
		return nil, fmt.Errorf("capture: replay solver: %w", err)
	}
	// One scratch batch reused across segments: the zero-copy record
	// views feed it in place, so the replay allocates per segment, not
	// per record.
	var batch []loc.Measurement
	for i := 0; i < r.NumSegments(); i++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("capture: replay abandoned at segment %d/%d: %w",
				i, r.NumSegments(), err)
		}
		seg := r.Segment(i)
		batch = batch[:0]
		for j := 0; j < seg.Count(); j++ {
			batch = append(batch, seg.Record(j).Measurement())
		}
		solver.AddBatch(ctx, batch)
	}
	snap, err := solver.Snapshot(ctx)
	if err != nil {
		return nil, fmt.Errorf("capture: replay solve: %w", err)
	}
	return &ReplayResult{
		RobustResult: snap,
		Header:       r.Header(),
		Segments:     r.NumSegments(),
		Records:      r.Records(),
	}, nil
}
