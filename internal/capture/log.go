package capture

import (
	"context"
	"sync"

	"rfly/internal/obs"
)

// Log is the append-only writer. The runtime engine owns one per SAR
// mission and seals a segment at each sortie commit; everything before
// the current append is immutable, which is what makes Snapshot cheap
// and a snapshot always a complete, self-validating log.
//
// The writer is mutex-guarded: the engine appends from the mission
// goroutine while the fleet layer snapshots for publication and the
// HTTP layer serves downloads.
type Log struct {
	mu   sync.Mutex
	buf  []byte
	seq  uint64 // next record sequence number
	segs int
	last int // newest sealed sortie
}

// NewLog starts an empty log: a sealed header, no segments.
func NewLog(h Header) *Log {
	return &Log{buf: appendHeader(nil, h)}
}

// Resume reopens a serialized log for further appends — the checkpoint
// restore path. The bytes are validated end to end first; the writer
// continues the sequence and sortie counters where the log left off.
func Resume(data []byte) (*Log, error) {
	r, err := OpenLog(data)
	if err != nil {
		return nil, err
	}
	return &Log{
		buf:  append([]byte(nil), data...),
		seq:  r.Records(),
		segs: r.NumSegments(),
		last: r.LastSortie(),
	}, nil
}

// AppendSegmentCtx seals the records as one segment committed at the
// given sortie count (1-based, strictly increasing; empty appends are
// no-ops). The encode runs under a "capture.append" span when ctx
// carries a recorder.
func (l *Log) AppendSegmentCtx(ctx context.Context, sortie int, recs []Record) {
	if len(recs) == 0 {
		return
	}
	_, span := obs.StartSpan(ctx, "capture.append")
	defer span.End()
	l.mu.Lock()
	defer l.mu.Unlock()
	if sortie <= l.last {
		// The engine commits sorties monotonically; a non-monotone append
		// is a caller bug and would make the log unreadable, so drop it
		// rather than poison every future OpenLog.
		span.Bool("dropped", true)
		return
	}
	l.buf = appendSegment(l.buf, sortie, l.seq, recs)
	l.seq += uint64(len(recs))
	l.segs++
	l.last = sortie
	span.Int("sortie", int64(sortie)).Int("records", int64(len(recs))).Int("bytes", int64(len(l.buf)))
}

// Snapshot returns a copy of the complete log bytes (header plus every
// sealed segment) — always independently parseable by OpenLog.
func (l *Log) Snapshot() []byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]byte(nil), l.buf...)
}

// Len returns the log's current size in bytes.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buf)
}

// Segments returns how many segments have been sealed.
func (l *Log) Segments() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.segs
}

// Records returns how many records have been sealed.
func (l *Log) Records() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// LastSortie returns the newest sealed sortie count (0 when empty).
func (l *Log) LastSortie() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.last
}
