package capture

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"

	"rfly/internal/geom"
)

// fuzzSegment builds one sealed segment frame for seeding.
func fuzzSegment(sortie int, baseSeq uint64, n int) []byte {
	recs := synthRecords(n, sortie, geom.P(0.5, 1.5, 0))
	if n > 2 {
		recs[1].Unlocked = true
	}
	return appendSegment(nil, sortie, baseSeq, recs)
}

// corruptSegTruncate cuts the frame inside the record area and re-seals
// the CRC, so the truncation (not the checksum) must be what rejects it.
func corruptSegTruncate(seg []byte) []byte {
	cut := seg[:len(seg)-4-RecordSize/2]
	return binary.LittleEndian.AppendUint32(cut, 0) // CRC of nothing useful
}

// corruptSegCRC flips one bit in the trailer.
func corruptSegCRC(seg []byte) []byte {
	out := append([]byte(nil), seg...)
	out[len(out)-1] ^= 0x01
	return out
}

// corruptSegVersion bumps the version and re-seals, so the version check
// (not the CRC) must reject it.
func corruptSegVersion(seg []byte) []byte {
	out := append([]byte(nil), seg[:len(seg)-4]...)
	binary.LittleEndian.PutUint16(out[4:], Version+1)
	return binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(out))
}

// corruptSegCount forges an absurd record count and re-seals — the dims
// bound must reject it before any allocation sized by it.
func corruptSegCount(seg []byte) []byte {
	out := append([]byte(nil), seg[:len(seg)-4]...)
	binary.LittleEndian.PutUint32(out[12:], maxSegRecords+1)
	return binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(out))
}

// FuzzCaptureSegmentDecode holds the segment codec's contract against
// arbitrary bytes: every acceptance is canonical (re-encoding the
// decoded fields and records reproduces the input frame byte for byte,
// and decoding is idempotent), and every rejection is typed
// (ErrInvalidLog or a sentinel wrapping it) — never a panic, never an
// allocation sized by forged dims.
func FuzzCaptureSegmentDecode(f *testing.F) {
	valid := fuzzSegment(1, 0, 6)
	f.Add(valid)
	f.Add(fuzzSegment(3, 40, 1))
	f.Add(corruptSegTruncate(valid))
	f.Add(corruptSegCRC(valid))
	f.Add(corruptSegVersion(valid))
	f.Add(corruptSegCount(valid))
	f.Add([]byte(segMagic))
	f.Add(append(valid, fuzzSegment(2, 6, 3)...))

	f.Fuzz(func(t *testing.T, data []byte) {
		seg, rest, err := DecodeSegment(data)
		if err != nil {
			if !errors.Is(err, ErrInvalidLog) {
				t.Fatalf("rejection not typed: %v", err)
			}
			return
		}
		if len(seg)+len(rest) != len(data) || !bytes.Equal(seg.Bytes(), data[:len(seg)]) {
			t.Fatal("accepted view is not a prefix of the input")
		}
		// Canonical form: re-encode the decoded fields and records and
		// require byte equality with the accepted frame.
		recs := make([]Record, seg.Count())
		for i := range recs {
			v := seg.Record(i)
			recs[i] = Record{T: v.T(), Pos: v.Pos(), H: v.H(), SNRdB: v.SNRdB(), Unlocked: v.Unlocked()}
		}
		re := appendSegment(nil, seg.Sortie(), seg.BaseSeq(), recs)
		if !bytes.Equal(re, seg.Bytes()) {
			t.Fatalf("accepted frame not canonical: re-encode differs (%d vs %d bytes)", len(re), len(seg))
		}
		// Idempotence: the accepted frame decodes again to itself.
		seg2, rest2, err := DecodeSegment(seg.Bytes())
		if err != nil || len(rest2) != 0 || !bytes.Equal(seg2.Bytes(), seg.Bytes()) {
			t.Fatalf("re-decode of accepted frame failed: %v", err)
		}
		// An accepted frame must also survive the log-level path when
		// framed behind a fresh header with a continuous sequence.
		l := NewLog(testHeader())
		l.AppendSegmentCtx(context.Background(), seg.Sortie(), recs)
		if _, err := OpenLog(l.Snapshot()); err != nil {
			t.Fatalf("re-logged accepted records rejected: %v", err)
		}
	})
}
