package capture

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"

	"rfly/internal/geom"
	"rfly/internal/loc"
)

// buildTestLog records a clean synthetic mission: 3 sorties × 14 points
// toward a tag at (0.5, 1.5, 0), with a couple of unlocked captures.
func buildTestLog(t *testing.T) ([]byte, [][]Record) {
	t.Helper()
	ctx := context.Background()
	tag := geom.P(0.5, 1.5, 0)
	l := NewLog(testHeader())
	var segs [][]Record
	for s := 1; s <= 3; s++ {
		recs := synthRecords(14, s, tag)
		if s == 2 {
			recs[0].Unlocked = true
			recs[7].Unlocked = true
		}
		l.AppendSegmentCtx(ctx, s, recs)
		segs = append(segs, recs)
	}
	return l.Snapshot(), segs
}

func TestReplaySolvesFromLogAlone(t *testing.T) {
	data, _ := buildTestLog(t)
	rr, err := Replay(context.Background(), data, LiveOptions())
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if rr.Segments != 3 || rr.Records != 42 {
		t.Fatalf("provenance: %d segments, %d records", rr.Segments, rr.Records)
	}
	if math.Abs(rr.Location.X-0.5) > 0.1 || math.Abs(rr.Location.Y-1.5) > 0.1 {
		t.Fatalf("replayed solve at (%.3f, %.3f), want near (0.5, 1.5)", rr.Location.X, rr.Location.Y)
	}
	if rr.Total != 42 || rr.Kept != 40 {
		t.Fatalf("robust accounting: total %d kept %d, want 42/40", rr.Total, rr.Kept)
	}
}

// TestReplayBitIdenticalToDirectStream is the in-package half of the
// equivalence story: replaying the log reproduces, bit for bit, a
// streaming solve fed the same batches directly (the cross-stack half —
// against a live sim mission — lives in internal/runtime).
func TestReplayBitIdenticalToDirectStream(t *testing.T) {
	data, segs := buildTestLog(t)
	ctx := context.Background()

	solver, err := loc.NewRobustStreamSolver(testHeader().Config(LiveOptions()))
	if err != nil {
		t.Fatal(err)
	}
	for _, recs := range segs {
		batch := make([]loc.Measurement, len(recs))
		for i, r := range recs {
			batch[i] = r.Measurement()
		}
		solver.AddBatch(ctx, batch)
	}
	want, err := solver.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}

	got, err := Replay(ctx, data, LiveOptions())
	if err != nil {
		t.Fatal(err)
	}
	for name, pair := range map[string][2]float64{
		"x":       {got.Location.X, want.Location.X},
		"y":       {got.Location.Y, want.Location.Y},
		"peak":    {got.Peak, want.Peak},
		"sigma_x": {got.SigmaX, want.SigmaX},
		"sigma_y": {got.SigmaY, want.SigmaY},
	} {
		if math.Float64bits(pair[0]) != math.Float64bits(pair[1]) {
			t.Errorf("%s: replay %v != direct %v (bits differ)", name, pair[0], pair[1])
		}
	}
}

func TestReplayOverrides(t *testing.T) {
	data, _ := buildTestLog(t)
	ctx := context.Background()

	coarse, err := Replay(ctx, data, ReplayOptions{Robust: true, CoarseRes: 0.25, FineRes: 0.05, Workers: 2})
	if err != nil {
		t.Fatalf("changed-grid replay: %v", err)
	}
	// A 0.25 m lattice over a 2 m collinear aperture has little range
	// resolution; the point of the test is that a changed-grid replay
	// completes and stays in the tag's neighborhood.
	if math.Abs(coarse.Location.X-0.5) > 0.5 || math.Abs(coarse.Location.Y-1.5) > 0.5 {
		t.Fatalf("coarse replay wandered to (%.3f, %.3f)", coarse.Location.X, coarse.Location.Y)
	}

	// Non-robust replay integrates the unlocked captures too.
	plain, err := Replay(ctx, data, ReplayOptions{})
	if err != nil {
		t.Fatalf("non-robust replay: %v", err)
	}
	if plain.Kept != 42 {
		t.Fatalf("non-robust replay kept %d, want all 42", plain.Kept)
	}

	// A region override narrows the search.
	reg := &loc.Region{X0: 0, Y0: 1, X1: 1, Y1: 2}
	narrowed, err := Replay(ctx, data, ReplayOptions{Robust: true, Region: reg})
	if err != nil {
		t.Fatalf("region-override replay: %v", err)
	}
	if narrowed.Location.X < 0 || narrowed.Location.X > 1 {
		t.Fatalf("override region ignored: x = %.3f", narrowed.Location.X)
	}
}

func TestReplayRejectsCorruptLog(t *testing.T) {
	data, _ := buildTestLog(t)
	data[len(data)-2] ^= 0x10
	if _, err := Replay(context.Background(), data, LiveOptions()); !errors.Is(err, ErrInvalidLog) {
		t.Fatalf("corrupt log replayed: %v", err)
	}
}

func TestReplayHonorsCancellation(t *testing.T) {
	data, _ := buildTestLog(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Replay(ctx, data, LiveOptions()); err == nil {
		t.Fatal("cancelled replay returned a result")
	}
}

// TestConcurrentAppendSnapshotReplay backs the CI race gate: a writer
// sealing segments while readers snapshot and replay concurrently.
func TestConcurrentAppendSnapshotReplay(t *testing.T) {
	ctx := context.Background()
	tag := geom.P(0.5, 1.5, 0)
	l := NewLog(testHeader())
	l.AppendSegmentCtx(ctx, 1, synthRecords(14, 1, tag))

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for s := 2; s <= 12; s++ {
			l.AppendSegmentCtx(ctx, s, synthRecords(14, s, tag))
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				snap := l.Snapshot()
				if _, err := OpenLog(snap); err != nil {
					t.Errorf("snapshot unreadable mid-append: %v", err)
					return
				}
				if _, err := Replay(ctx, snap, ReplayOptions{Robust: true, CoarseRes: 0.25}); err != nil {
					t.Errorf("replay of live snapshot: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := l.Segments(); got != 12 {
		t.Fatalf("writer sealed %d segments, want 12", got)
	}
}
