// Command rfly-replay re-solves a completed mission from its capture
// log — no simulator, no mission re-run. The log (written by
// rfly-sim -capture-log or downloaded from a fleet node's
// /v1/missions/{id}/capture endpoint) carries the live solve's carrier,
// search region, and the full measurement stream; replaying it at the
// recorded settings reproduces the mission's localization bit for bit,
// and the -grid/-fine/-workers/-robust overrides re-ask the paper's
// Fig. 12 question — how would this flight have solved under different
// parameters — in milliseconds.
//
// Usage:
//
//	rfly-replay -log FILE                       # re-solve at the live settings
//	rfly-replay -log FILE -grid 0.2 -workers 4  # coarser grid, bounded pool
//	rfly-replay -log FILE -robust=false         # integrate unlocked captures too
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"rfly/internal/capture"
)

func main() {
	logPath := flag.String("log", "", "capture log file to re-solve (required)")
	grid := flag.Float64("grid", 0, "override the coarse grid resolution in meters (0 keeps the live 0.10)")
	fine := flag.Float64("fine", 0, "override the fine refinement resolution in meters (0 keeps the live 0.01)")
	workers := flag.Int("workers", 0, "override the grid-search worker pool (0 = GOMAXPROCS; results are bit-identical for every count)")
	robust := flag.Bool("robust", true, "reject carrier-unlocked captures exactly as the live mission solve does")
	flag.Parse()

	if *logPath == "" {
		fmt.Fprintln(os.Stderr, "rfly-replay: -log FILE is required")
		flag.Usage()
		os.Exit(2)
	}
	data, err := os.ReadFile(*logPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rfly-replay: %v\n", err)
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	rr, err := capture.Replay(ctx, data, capture.ReplayOptions{
		CoarseRes: *grid,
		FineRes:   *fine,
		Workers:   *workers,
		Robust:    *robust,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "rfly-replay: %v\n", err)
		os.Exit(1)
	}

	h := rr.Header
	fmt.Printf("log: %s (%d segments, %d records, seed %d)\n", *logPath, rr.Segments, rr.Records, h.Seed)
	fmt.Printf("carrier: %.0f Hz  region: [%.2f,%.2f]x[%.2f,%.2f] m\n",
		h.ChannelHz, h.Region.X0, h.Region.X1, h.Region.Y0, h.Region.Y1)
	fmt.Printf("aperture: %d/%d captures kept\n", rr.Kept, rr.Total)
	fmt.Printf("estimate: x=%.17g y=%.17g peak=%.6g sigma=(%.4f, %.4f)\n",
		rr.Location.X, rr.Location.Y, rr.Peak, rr.SigmaX, rr.SigmaY)
	// The CSV-style line matches rfly-sim's mission output, so the
	// record→replay e2e can diff the two estimates textually.
	fmt.Printf("# loc,%.4f,%.4f\n", rr.Location.X, rr.Location.Y)
}
