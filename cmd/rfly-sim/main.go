// Command rfly-sim runs a configurable RFly scenario end to end: it builds
// a scene, scatters tagged items, flies the relay drone along a survey
// plan, and prints the inventory/localization report.
//
// Usage:
//
//	rfly-sim [-scene open|corridor|warehouse|facility] [-tags N]
//	         [-seed N] [-norelay] [-mission] [-faults] [-map] [-v]
//	rfly-sim -checkpoint FILE [-seed N]    # supervised mission, resumable
//	rfly-sim -trace FILE [-seed N]         # supervised mission, Chrome trace JSON
//	rfly-sim -capture-log FILE [-seed N]   # supervised mission, columnar capture
//	                                       # log for rfly-replay re-solves
//	rfly-sim -plan greedy|coverage         # supervised mission flying a
//	                                       # planner-solved relay tour
//	rfly-sim -chaos N [-seed N]            # chaos invariant campaign
//	rfly-sim -swarm N [-kill-relay-at T]   # N-drone relay fleet; optionally
//	                                       # kill the serving primary at tick T
//	                                       # and promote a hot shadow mid-sortie
//
// Any supervised-mission flag (-checkpoint, -trace, -capture-log, -swarm)
// selects the supervised mission; they compose freely. -pprof host:port
// exposes net/http/pprof on a side listener in every mode.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rfly"
	"rfly/internal/fault"
	"rfly/internal/reader"
	"rfly/internal/relay"
	"rfly/internal/rng"
	"rfly/internal/world"
)

func main() {
	sceneName := flag.String("scene", "warehouse", "scene: open, corridor, warehouse, facility")
	tags := flag.Int("tags", 10, "number of tagged items to scatter")
	seed := flag.Uint64("seed", 1, "simulation seed")
	noRelay := flag.Bool("norelay", false, "disable the relay (direct-reader baseline)")
	verbose := flag.Bool("v", false, "print per-item detail")
	showMap := flag.Bool("map", false, "print a plan-view map of the scenario")
	mission := flag.Bool("mission", false, "print the coverage/battery plan for the scene before flying")
	faults := flag.Bool("faults", false, "inject a seeded fault schedule and compare a recovery-enabled survey against a nominal one")
	chaosSeeds := flag.Int("chaos", 0, "run a chaos campaign over N randomized fault schedules and kill/resume points")
	swarmRelays := flag.Int("swarm", 0, "fly the supervised mission with an N-drone relay fleet: one elected primary, hot pre-locked shadows")
	killRelayAt := flag.Int("kill-relay-at", -1, "kill the serving primary at this absolute mission tick and promote a shadow mid-sortie (requires -swarm)")
	planName := flag.String("plan", "", "fly the supervised mission on a planner-solved relay tour (greedy or coverage) instead of the fixed relay position")
	ckptPath := flag.String("checkpoint", "", "run the supervised mission, persisting (and resuming from) this checkpoint file")
	tracePath := flag.String("trace", "", "run the supervised mission under a flight recorder and write Chrome trace_event JSON here (Perfetto / chrome://tracing)")
	captureLog := flag.String("capture-log", "", "run the supervised mission and write its columnar capture log here (re-solve it with rfly-replay -log FILE)")
	pprofAddr := flag.String("pprof", "", "pprof listen address (e.g. localhost:6060; empty = disabled)")
	flag.Parse()

	if *pprofAddr != "" {
		// net/http/pprof registers on DefaultServeMux; the profiles
		// cover whichever mode runs below (chaos campaigns and long
		// missions are the interesting targets).
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "pprof listener: %v\n", err)
			}
		}()
		fmt.Printf("pprof on http://%s/debug/pprof/\n", *pprofAddr)
	}

	// SIGINT/SIGTERM cancel the mission context: the engine rolls back to
	// the last sortie boundary, the checkpoint is flushed, and the
	// process exits non-zero.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *chaosSeeds > 0 {
		os.Exit(runChaos(ctx, *chaosSeeds, *seed))
	}
	if *killRelayAt >= 0 && *swarmRelays <= 0 {
		fmt.Fprintln(os.Stderr, "-kill-relay-at needs a fleet: pass -swarm N")
		os.Exit(2)
	}
	if *ckptPath != "" || *tracePath != "" || *captureLog != "" || *swarmRelays > 0 || *planName != "" {
		os.Exit(runMission(ctx, *seed, *planName, *ckptPath, *tracePath, *captureLog, *swarmRelays, *killRelayAt))
	}

	var scene *rfly.Scene
	var readerPos rfly.Point
	var aisles []float64
	var xRange [2]float64
	switch *sceneName {
	case "open":
		scene = rfly.OpenSpace()
		readerPos = rfly.At(-10, 1, 1.5)
		aisles = []float64{0}
		xRange = [2]float64{0, 10}
	case "corridor":
		scene = rfly.Corridor(40, 3)
		readerPos = rfly.At(0.5, 1.5, 1.5)
		aisles = []float64{1.2}
		xRange = [2]float64{3, 38}
	case "warehouse":
		scene = rfly.Warehouse(30, 20, 3)
		readerPos = rfly.At(1.5, 1.0, 2.0)
		aisles = []float64{3.6, 8.6, 13.6}
		xRange = [2]float64{4, 26}
	case "facility":
		scene = rfly.ResearchFacility()
		readerPos = rfly.At(2, 2, 1.5)
		aisles = []float64{4, 8}
		xRange = [2]float64{4, 28}
	default:
		fmt.Fprintf(os.Stderr, "unknown scene %q\n", *sceneName)
		os.Exit(2)
	}

	// build constructs a fresh, identically-seeded scenario — the fault
	// demo needs one system per arm so the arms cannot contaminate each
	// other through mutated relay state.
	build := func() *rfly.System {
		sys := rfly.New(rfly.Options{
			Scene:              scene,
			ReaderPos:          readerPos,
			NoRelay:            *noRelay,
			ShadowSigmaDB:      3,
			GroundReflectivity: 0.3,
			Seed:               *seed,
		})
		// Scatter items along the aisles' +Y faces.
		src := rng.New(*seed)
		for i := 0; i < *tags; i++ {
			aisle := aisles[i%len(aisles)]
			x := src.Uniform(xRange[0]+1, xRange[1]-1)
			y := aisle + src.Uniform(0.6, 1.4)
			name := fmt.Sprintf("item-%02d", i+1)
			if err := sys.RegisterItem(name, rfly.NewEPC96(0xE280, 0xCAFE, uint16(i), 0, 0, 0),
				rfly.At(x, y, 0.2)); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		return sys
	}
	sys := build()

	if *faults {
		if *noRelay {
			fmt.Fprintln(os.Stderr, "-faults needs the relay (drop -norelay)")
			os.Exit(2)
		}
		faultDemo(build, *sceneName, *seed, aisles[0], xRange)
		return
	}

	if *mission {
		m := rfly.Mission{
			X0: xRange[0], Y0: aisles[0],
			X1: xRange[1], Y1: aisles[len(aisles)-1] + 2,
			AltitudeM:   1.2,
			ReadRadiusM: 6,
			Overlap:     0.15,
		}
		plan, err := m.PlanCoverage(rfly.Bebop2(), rfly.Bebop2Endurance())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("mission: %v\n", plan)
		cycle := plan.Inventory(*tags, 760)
		fmt.Printf("inventory cycle for %d tags: %v (read budget %d)\n\n",
			*tags, cycle.Total.Round(time.Second), cycle.ReadBudget)
	}

	if *showMap {
		markers := []world.Marker{{Pos: readerPos, Glyph: 'R'}}
		for _, it := range sys.Items() {
			markers = append(markers, world.Marker{Pos: it.TruePos, Glyph: 't'})
		}
		fmt.Println("plan view (R = reader, t = tags; # concrete, = steel, - drywall):")
		fmt.Print(scene.RenderASCII(markers, 2))
		fmt.Println()
	}

	if *noRelay {
		fmt.Printf("scene %s, %d items, DIRECT READER at %v\n", *sceneName, *tags, readerPos)
		read := 0
		for _, it := range sys.Items() {
			rate, err := sys.ReadRate(it.EPC, 20)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if rate > 0.5 {
				read++
			}
			if *verbose {
				fmt.Printf("  %-10s at (%.1f, %.1f): %3.0f%%\n", it.Name, it.TruePos.X, it.TruePos.Y, 100*rate)
			}
		}
		fmt.Printf("readable items: %d/%d\n", read, *tags)
		return
	}

	fmt.Printf("scene %s, %d items, relay survey from reader at %v\n", *sceneName, *tags, readerPos)
	located, detected := 0, 0
	var errSum float64
	for _, aisle := range aisles {
		plan := rfly.Line(rfly.At(xRange[0], aisle, 1.2), rfly.At(xRange[1], aisle, 1.2), 140)
		report, err := sys.Survey(plan, rfly.SurveyOptions{
			SearchRegion:   &rfly.Region{X0: xRange[0] - 1, Y0: aisle + 0.2, X1: xRange[1] + 1, Y1: aisle + 1.8},
			RoundsPerPoint: 2,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for _, li := range report.Located {
			located++
			errSum += li.ErrorM
			if *verbose {
				fmt.Printf("  %-10s located (%5.2f, %5.2f) err %4.0f cm, %d reads, SNR %.0f dB\n",
					li.Name, li.Location.X, li.Location.Y, 100*li.ErrorM, li.Reads, li.MeanSNRdB)
			}
		}
		detected += len(report.DetectedOnly)
	}
	fmt.Printf("located %d/%d items (plus %d detected-only)\n", located, *tags, detected)
	if located > 0 {
		fmt.Printf("mean localization error: %.0f cm\n", 100*errSum/float64(located))
	}
}

// faultDemo flies the relay down the first aisle twice under the SAME
// seeded fault schedule — once with every recovery mechanism disabled,
// once with the full stack (watchdog re-lock, MAC retry, gain reprogram,
// station-keeping, battery swap) — and prints what the faults cost each
// arm in per-tick reads of the nearest item.
func faultDemo(build func() *rfly.System, sceneName string, seed uint64, aisle float64, xRange [2]float64) {
	const ticks = 80
	sched, err := fault.Plan(fault.PlanConfig{Ticks: ticks * 3 / 4}, rng.New(seed).Split("fault-demo"))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("scene %s, seeded fault schedule over %d survey ticks:\n", sceneName, ticks)
	for _, ev := range sched.Sorted() {
		fmt.Printf("  %v\n", ev)
	}

	run := func(recover bool) (reads int) {
		sys := build()
		d := sys.Deployment()
		plan := rfly.Line(rfly.At(xRange[0], aisle, 1.2), rfly.At(xRange[1], aisle, 1.2), ticks)
		inj, err := fault.NewInjector(sched, d)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		var wd *relay.Watchdog
		if recover {
			wd, _ = relay.NewWatchdog(d.Relay, relay.WatchdogConfig{})
		}
		pol := reader.DefaultRetryPolicy()
		sagTicks := -1
		for _, pt := range plan.Points {
			d.MoveRelay(pt)
			inj.Step()
			if recover {
				wd.Tick(d)
				if !d.RelayPowered() {
					sagTicks++
					if sagTicks >= 5 {
						d.SetRelayPowered(true)
						sagTicks = -1
					}
				}
				d.StationKeep(2)
				if !d.RelayPlanStable() {
					d.ReprogramGains()
				}
			}
			// Read the item nearest the current hover point.
			var nearest int
			best := -1.0
			for j, t := range d.Tags {
				dist := t.Pos.Dist(d.RelayPos)
				if best < 0 || dist < best {
					best, nearest = dist, j
				}
			}
			if len(d.Tags) == 0 {
				continue
			}
			if recover {
				if d.ReadAttemptRetry(d.Tags[nearest], pol, nil) {
					reads++
				}
			} else if d.ReadAttempt(d.Tags[nearest]) {
				reads++
			}
		}
		return reads
	}

	nominal := run(false)
	recovery := run(true)
	fmt.Printf("\nnominal   (no recovery):   %d/%d ticks read the nearest item (%.0f%%)\n",
		nominal, ticks, 100*float64(nominal)/ticks)
	fmt.Printf("recovery  (full stack):    %d/%d ticks read the nearest item (%.0f%%)\n",
		recovery, ticks, 100*float64(recovery)/ticks)
	fmt.Println("recovery = watchdog re-lock + MAC retry + gain reprogram + station-keep + battery swap")
}
