package main

import (
	"context"
	"errors"
	"fmt"
	"os"

	"rfly/internal/experiments"
	"rfly/internal/runtime"
	"rfly/internal/runtime/chaos"
)

// Supervised-mission and chaos modes. Both run under the signal-aware
// context: SIGINT/SIGTERM cancels the mission mid-sortie, the engine
// rolls back to the last sortie boundary, the final checkpoint is
// flushed, and the process exits non-zero so callers know the mission
// did not complete.

// runMission runs the canonical supervised mission with checkpoint
// persistence: if ckptPath exists the mission resumes from it;
// otherwise it starts fresh. The checkpoint is rewritten after every
// sortie and on interruption.
func runMission(ctx context.Context, seed uint64, ckptPath string) int {
	cfg := experiments.DefaultMissionConfig(seed)
	var e *runtime.Engine
	if data, err := os.ReadFile(ckptPath); err == nil {
		e, err = runtime.Restore(cfg, data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "checkpoint %s unusable: %v\n", ckptPath, err)
			return 1
		}
		fmt.Printf("resumed from %s: %d/%d sorties committed\n", ckptPath, e.SortiesDone(), cfg.Sorties)
	} else {
		e, err = runtime.New(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}

	flush := func() {
		if err := os.WriteFile(ckptPath, e.Snapshot(), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "checkpoint write: %v\n", err)
		}
	}
	var runErr error
	for e.SortiesDone() < cfg.Sorties {
		s, err := e.RunSortie(ctx)
		if err != nil {
			runErr = err
			break
		}
		flush()
		fmt.Printf("sortie %d: %d/%d reads, %d relocks, %d recoveries, %d swaps, aborted=%t\n",
			s.Sortie, s.Reads, s.Attempts, s.Relocks, s.Recoveries, s.BatterySwaps, s.Aborted)
	}
	// Flush the final checkpoint even on interruption: the engine rolled
	// back to the last sortie boundary, so what we write is exactly the
	// state a later run resumes from.
	flush()

	res := e.Result()
	res.Interrupted = runErr != nil
	fmt.Print(res.CSV())
	if runErr != nil {
		if errors.Is(runErr, context.Canceled) || errors.Is(runErr, context.DeadlineExceeded) {
			fmt.Fprintf(os.Stderr, "mission interrupted (%d/%d sorties); checkpoint saved to %s\n",
				e.SortiesDone(), cfg.Sorties, ckptPath)
		} else {
			fmt.Fprintln(os.Stderr, runErr)
		}
		return 1
	}
	fmt.Printf("mission complete: %d sorties; checkpoint %s\n", e.SortiesDone(), ckptPath)
	return 0
}

// runChaos fuzzes the mission runtime with randomized fault schedules
// and kill/resume points, asserting the global invariants.
func runChaos(ctx context.Context, seeds int, seed uint64) int {
	fmt.Printf("chaos campaign: %d seeds, base %d\n", seeds, seed)
	res, err := chaos.Run(ctx, chaos.Config{
		Seeds:    seeds,
		BaseSeed: seed,
		Logf: func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "campaign stopped after %d/%d seeds: %v\n", res.Runs, seeds, err)
		return 1
	}
	fmt.Printf("\n%d runs, %d supervised ticks checked, %d resumes, %d aborted sorties\n",
		res.Runs, res.TicksChecked, res.Resumes, res.Aborts)
	if len(res.Violations) > 0 {
		for _, v := range res.Violations {
			fmt.Fprintln(os.Stderr, v)
		}
		fmt.Fprintf(os.Stderr, "%d invariant violations\n", len(res.Violations))
		return 1
	}
	fmt.Println("all invariants held (energy conservation, monotone clock, no unlocked reads, kill/resume equivalence)")
	return 0
}
