package main

import (
	"context"
	"errors"
	"fmt"
	"os"

	"rfly/internal/experiments"
	"rfly/internal/fault"
	"rfly/internal/geom"
	"rfly/internal/obs"
	"rfly/internal/plan"
	"rfly/internal/runtime"
	"rfly/internal/runtime/chaos"
	"rfly/internal/swarm"
	"rfly/internal/world"
)

// Supervised-mission and chaos modes. Both run under the signal-aware
// context: SIGINT/SIGTERM cancels the mission mid-sortie, the engine
// rolls back to the last sortie boundary, the final checkpoint is
// flushed, and the process exits non-zero so callers know the mission
// did not complete.

// runMission runs the canonical supervised mission with checkpoint
// persistence: if ckptPath exists the mission resumes from it;
// otherwise it starts fresh (an empty ckptPath disables persistence —
// the -trace-only mode). The checkpoint is rewritten after every sortie
// and on interruption. A non-empty tracePath runs the mission under a
// flight recorder and writes the span dump as Chrome trace_event JSON,
// loadable in Perfetto or chrome://tracing.
// swarmRelays > 0 flies the mission with an N-drone fleet under the
// swarm coordinator; killRelayAt >= 0 additionally destroys the serving
// primary at that absolute tick, demonstrating mid-sortie failover.
// A non-empty capPath writes the mission's columnar capture log at the
// end — the input to rfly-replay's sim-free re-solves.
// A non-empty planName first solves a relay tour over the corridor with
// the named planner and flies the mission station to station, carrying
// the plan's provenance in every checkpoint.
func runMission(ctx context.Context, seed uint64, planName, ckptPath, tracePath, capPath string, swarmRelays, killRelayAt int) int {
	cfg := experiments.DefaultMissionConfig(seed)
	if planName != "" {
		planned, err := solveMissionPlan(ctx, planName, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		cfg = planned
	}
	if swarmRelays > 0 {
		cfg.Swarm = swarm.Config{Relays: swarmRelays}
	}
	if killRelayAt >= 0 {
		cfg.Schedule = fault.Schedule{Events: append(
			append([]fault.Event(nil), cfg.Schedule.Events...),
			fault.Event{Class: fault.RelayDeath, Start: killRelayAt, Severity: 1},
		)}
	}

	var rec *obs.Recorder
	if tracePath != "" {
		rec = obs.NewRecorder(0)
		ctx = obs.WithRecorder(ctx, rec)
	}

	var e *runtime.Engine
	if data, err := os.ReadFile(ckptPath); ckptPath != "" && err == nil {
		e, err = runtime.Restore(cfg, data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "checkpoint %s unusable: %v\n", ckptPath, err)
			return 1
		}
		fmt.Printf("resumed from %s: %d/%d sorties committed\n", ckptPath, e.SortiesDone(), cfg.Sorties)
	} else {
		e, err = runtime.New(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}

	flush := func() {
		if ckptPath == "" {
			return
		}
		if err := os.WriteFile(ckptPath, e.SnapshotCtx(ctx), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "checkpoint write: %v\n", err)
		}
	}
	var runErr error
	for e.SortiesDone() < cfg.Sorties {
		s, err := e.RunSortie(ctx)
		if err != nil {
			runErr = err
			break
		}
		flush()
		line := fmt.Sprintf("sortie %d: %d/%d reads, %d relocks, %d recoveries, %d swaps, aborted=%t",
			s.Sortie, s.Reads, s.Attempts, s.Relocks, s.Recoveries, s.BatterySwaps, s.Aborted)
		if swarmRelays > 0 {
			line += fmt.Sprintf(", %d promotions", s.Promotions)
			for _, h := range s.Handoffs {
				line += fmt.Sprintf(" [handoff term %d: drone %d -> %d at tick %d, %d SAR captured, latency %d, prelocked=%t]",
					h.Term, h.FromID, h.ToID, h.Tick, h.SARCaptured, h.LatencyTicks, h.PreLocked)
			}
		}
		fmt.Println(line)
	}
	// Flush the final checkpoint even on interruption: the engine rolled
	// back to the last sortie boundary, so what we write is exactly the
	// state a later run resumes from.
	flush()

	// The capture log holds exactly the committed sorties' segments, so
	// writing it after an interruption still yields a replayable log —
	// same contract as the checkpoint flush above.
	if capPath != "" {
		if log := e.CaptureLog(); len(log) > 0 {
			if err := os.WriteFile(capPath, log, 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "capture log write: %v\n", err)
			} else {
				fmt.Printf("capture log: %d bytes (%d sorties) written to %s\n",
					len(log), e.SortiesDone(), capPath)
			}
		} else {
			fmt.Fprintln(os.Stderr, "capture log empty: no SAR sortie committed")
		}
	}

	// ResultCtx so the end-of-mission SAR solve lands in the trace too.
	res := e.ResultCtx(ctx)
	res.Interrupted = runErr != nil
	fmt.Print(res.CSV())

	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "trace write: %v\n", err)
			return 1
		}
		werr := obs.WriteTrace(f, rec.Snapshot())
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(os.Stderr, "trace write: %v\n", werr)
			return 1
		}
		fmt.Printf("trace: %d spans (%d dropped) written to %s\n", rec.Len(), rec.Dropped(), tracePath)
	}
	if runErr != nil {
		if errors.Is(runErr, context.Canceled) || errors.Is(runErr, context.DeadlineExceeded) {
			if ckptPath != "" {
				fmt.Fprintf(os.Stderr, "mission interrupted (%d/%d sorties); checkpoint saved to %s\n",
					e.SortiesDone(), cfg.Sorties, ckptPath)
			} else {
				fmt.Fprintf(os.Stderr, "mission interrupted (%d/%d sorties)\n", e.SortiesDone(), cfg.Sorties)
			}
		} else {
			fmt.Fprintln(os.Stderr, runErr)
		}
		return 1
	}
	if ckptPath != "" {
		fmt.Printf("mission complete: %d sorties; checkpoint %s\n", e.SortiesDone(), ckptPath)
	} else {
		fmt.Printf("mission complete: %d sorties\n", e.SortiesDone())
	}
	return 0
}

// solveMissionPlan runs the named planner over the mission's corridor —
// the hover region spans the far half where the tags sit — and returns
// the config flying the solved tour: sortie k station-keeps at
// stations[k % len], and every checkpoint carries the plan's name, hash,
// and stations as provenance.
func solveMissionPlan(ctx context.Context, planName string, cfg runtime.Config) (runtime.Config, error) {
	p, err := plan.ByName(planName)
	if err != nil {
		return cfg, err
	}
	tags := make([]geom.Point, len(cfg.Tags))
	for i, t := range cfg.Tags {
		tags[i] = geom.P(t.X, t.Y, t.Z)
	}
	s := plan.Scenario{
		Scene:     world.Corridor(cfg.CorridorLengthM, cfg.CorridorWidthM),
		ReaderPos: cfg.ReaderPos,
		Tags:      tags,
		Start:     geom.P(cfg.ReaderPos.X, cfg.ReaderPos.Y, 0),
		Constraints: plan.Constraints{
			X0: 20, Y0: 1, X1: 36, Y1: 2,
			AltitudeM:   1.2,
			SpacingM:    2,
			MaxStations: 4,
			MinTagSNRdB: 3,
			TagReadHz:   200,
		},
		Seed: cfg.Seed,
	}
	res, err := p.Plan(ctx, s)
	if err != nil {
		return cfg, fmt.Errorf("planner %s: %w", planName, err)
	}
	if len(res.Stations) == 0 {
		return cfg, fmt.Errorf("planner %s found no station covering any tag", planName)
	}
	fmt.Printf("%v\n", res)
	cfg.PlanName = res.Planner
	cfg.PlanHash = res.Hash()
	cfg.PlanStations = res.StationPoints()
	return cfg, nil
}

// runChaos fuzzes the mission runtime with randomized fault schedules
// and kill/resume points, asserting the global invariants.
func runChaos(ctx context.Context, seeds int, seed uint64) int {
	fmt.Printf("chaos campaign: %d seeds, base %d\n", seeds, seed)
	res, err := chaos.Run(ctx, chaos.Config{
		Seeds:    seeds,
		BaseSeed: seed,
		Logf: func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "campaign stopped after %d/%d seeds: %v\n", res.Runs, seeds, err)
		return 1
	}
	fmt.Printf("\n%d runs, %d supervised ticks checked, %d resumes, %d aborted sorties\n",
		res.Runs, res.TicksChecked, res.Resumes, res.Aborts)
	if len(res.Violations) > 0 {
		for _, v := range res.Violations {
			fmt.Fprintln(os.Stderr, v)
		}
		fmt.Fprintf(os.Stderr, "%d invariant violations\n", len(res.Violations))
		return 1
	}
	fmt.Println("all invariants held (energy conservation, monotone clock, no unlocked reads, kill/resume equivalence)")
	return 0
}
