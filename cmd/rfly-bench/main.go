// rfly-bench runs the fast-path DSP benchmark harness (internal/perf)
// and writes the measurements to a JSON report. It exits non-zero if the
// fast paths fail their equivalence gates (FFT convolution vs direct
// ≤1e-9; striped grid search bit-identical to serial), so CI can run it
// as a correctness smoke as well as a perf artifact.
//
// Usage:
//
//	rfly-bench [-short] [-out BENCH_dsp.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"rfly/internal/perf"
)

func main() {
	short := flag.Bool("short", false, "CI-smoke scale: smaller buffers and a coarser grid")
	out := flag.String("out", "BENCH_dsp.json", "report path")
	flag.Parse()

	rep, err := perf.Run(*short)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rfly-bench: %v\n", err)
		os.Exit(1)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "rfly-bench: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "rfly-bench: %v\n", err)
		os.Exit(1)
	}
	for _, r := range rep.Results {
		line := fmt.Sprintf("%-32s %12.0f ns/op %6d allocs/op", r.Name, r.NsPerOp, r.AllocsPerOp)
		if r.SpeedupVsDirect > 0 {
			line += fmt.Sprintf("   %.2fx vs reference", r.SpeedupVsDirect)
		}
		fmt.Println(line)
	}
	fmt.Printf("report written to %s (GOMAXPROCS=%d)\n", *out, rep.GOMAXPROCS)
}
