// rfly-bench runs the fast-path DSP benchmark harness (internal/perf)
// and writes the measurements to a JSON report. It exits non-zero if the
// fast paths fail their equivalence gates (FFT convolution vs direct
// ≤1e-9; striped grid search bit-identical to serial), so CI can run it
// as a correctness smoke as well as a perf artifact.
//
// It also runs the observability-overhead harness (disabled-span cost,
// recording cost, metric primitives, trace encoding) and writes it to a
// second report, gated on the disabled-span budget.
//
// Usage:
//
//	rfly-bench [-short] [-out BENCH_dsp.json] [-obs-out BENCH_obs.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"rfly/internal/perf"
)

func main() {
	short := flag.Bool("short", false, "CI-smoke scale: smaller buffers and a coarser grid")
	out := flag.String("out", "BENCH_dsp.json", "report path")
	obsOut := flag.String("obs-out", "BENCH_obs.json", "observability-overhead report path (empty = skip)")
	flag.Parse()

	rep, err := perf.Run(*short)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rfly-bench: %v\n", err)
		os.Exit(1)
	}
	writeReport(*out, rep)
	for _, r := range rep.Results {
		line := fmt.Sprintf("%-32s %12.0f ns/op %6d allocs/op", r.Name, r.NsPerOp, r.AllocsPerOp)
		if r.SpeedupVsDirect > 0 {
			line += fmt.Sprintf("   %.2fx vs reference", r.SpeedupVsDirect)
		}
		fmt.Println(line)
	}
	fmt.Printf("report written to %s (GOMAXPROCS=%d)\n", *out, rep.GOMAXPROCS)

	if *obsOut == "" {
		return
	}
	orep, err := perf.RunObs(*short)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rfly-bench: %v\n", err)
		os.Exit(1)
	}
	writeReport(*obsOut, orep)
	for _, r := range orep.Results {
		fmt.Printf("%-32s %12.1f ns/op %6d allocs/op\n", r.Name, r.NsPerOp, r.AllocsPerOp)
	}
	fmt.Printf("obs report written to %s (disabled span %.1f ns/op, budget %.0f)\n",
		*obsOut, orep.DisabledSpanNsPerOp, perf.DisabledSpanBudgetNs)
	if orep.DisabledSpanNsPerOp > 10*perf.DisabledSpanBudgetNs {
		fmt.Fprintf(os.Stderr, "rfly-bench: disabled-span cost %.1f ns/op blows the %.0f ns/op budget tenfold\n",
			orep.DisabledSpanNsPerOp, perf.DisabledSpanBudgetNs)
		os.Exit(1)
	}
}

func writeReport(path string, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "rfly-bench: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "rfly-bench: %v\n", err)
		os.Exit(1)
	}
}
