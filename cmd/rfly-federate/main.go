// rfly-federate is the federation coordinator daemon: it fronts a
// fleet of rfly-serve nodes, placing missions on consistent-hash ring
// owners, replicating sortie checkpoints to a successor node, and
// re-leasing in-flight missions when the health detector declares a
// node dead.
//
//	POST /v1/missions      submit (202; 503 when read-only or no node
//	                       can take the work)
//	GET  /v1/missions/{id} poll a federated mission
//	GET  /v1/missions      list federated missions
//	GET  /v1/nodes         per-node health, gossiped load, read-only flag
//	GET  /healthz          liveness (503 while degraded to read-only)
//	GET  /metrics          routing/replication/failover counters
//
// Nodes come from -nodes (comma-separated base URLs of running
// rfly-serve instances) or -spawn N, which starts N in-process fleet
// nodes on loopback ports — a self-contained federation for demos and
// CI smoke runs.
//
// Usage:
//
//	rfly-federate -nodes http://a:8080,http://b:8080 [-addr :8090]
//	rfly-federate -spawn 3 [-shards 1] [-sorties 2] [-ticks 24]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rfly/internal/federation"
	"rfly/internal/fleet"
)

func main() {
	addr := flag.String("addr", ":8090", "coordinator HTTP listen address")
	nodeList := flag.String("nodes", "", "comma-separated rfly-serve base URLs")
	spawn := flag.Int("spawn", 0, "start N in-process fleet nodes on loopback ports")
	shards := flag.Int("shards", 1, "(spawn) shards per node")
	queueCap := flag.Int("queue", 0, "(spawn) admission queue capacity (0 = 16×shards)")
	maxBatch := flag.Int("batch", 8, "(spawn) max batch size per node")
	sorties := flag.Int("sorties", 1, "(spawn) sorties per mission")
	ticks := flag.Int("ticks", 12, "(spawn) ticks per sortie")
	seed := flag.Uint64("seed", 1, "coordinator seed (retry jitter, derived mission seeds)")
	heartbeat := flag.Duration("heartbeat", 500*time.Millisecond, "health probe period")
	suspectAfter := flag.Duration("suspect-after", 0, "silence before a node is suspect (0 = 3×heartbeat)")
	deadAfter := flag.Duration("dead-after", 0, "silence before a node is dead (0 = 10×heartbeat)")
	reqTimeout := flag.Duration("req-timeout", 10*time.Second, "per-forwarded-request timeout")
	flag.Parse()

	var nodes []string
	if *nodeList != "" {
		for _, n := range strings.Split(*nodeList, ",") {
			if n = strings.TrimSpace(n); n != "" {
				nodes = append(nodes, n)
			}
		}
	}
	var spawned []*fleet.Scheduler
	if *spawn > 0 {
		for i := 0; i < *spawn; i++ {
			sched, err := fleet.New(fleet.Config{
				Shards:         *shards,
				QueueCap:       *queueCap,
				MaxBatch:       *maxBatch,
				Sorties:        *sorties,
				TicksPerSortie: *ticks,
			})
			if err != nil {
				fatal(err)
			}
			sched.Start()
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				fatal(err)
			}
			srv := &http.Server{
				Handler:           fleet.NewHandler(sched),
				ReadHeaderTimeout: 5 * time.Second,
				IdleTimeout:       120 * time.Second,
			}
			go srv.Serve(ln)
			defer srv.Close()
			spawned = append(spawned, sched)
			nodes = append(nodes, "http://"+ln.Addr().String())
			fmt.Printf("spawned node %d on %s (%d shards)\n", i, ln.Addr(), *shards)
		}
	}
	if len(nodes) == 0 {
		fmt.Fprintln(os.Stderr, "rfly-federate: need -nodes or -spawn")
		os.Exit(2)
	}

	coord, err := federation.New(federation.Config{
		Nodes:          nodes,
		Seed:           *seed,
		Heartbeat:      *heartbeat,
		SuspectAfter:   *suspectAfter,
		DeadAfter:      *deadAfter,
		RequestTimeout: *reqTimeout,
	})
	if err != nil {
		fatal(err)
	}
	coord.Start()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           fleet.WithRequestTimeout(federation.NewHandler(coord), *reqTimeout),
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	errc := make(chan error, 1)
	go func() {
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()
	fmt.Printf("rfly-federate on %s fronting %d nodes\n", *addr, len(nodes))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "rfly-federate:", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	fmt.Println("rfly-federate: shutting down")
	dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		fmt.Fprintln(os.Stderr, "rfly-federate: http shutdown:", err)
	}
	coord.Stop()
	for _, s := range spawned {
		if err := s.Stop(dctx); err != nil {
			fmt.Fprintln(os.Stderr, "rfly-federate:", err)
		}
	}
	snap := coord.Metrics().Snapshot()
	fmt.Printf("stopped: %d routed, %d spilled, %d replicated, %d failovers, %d completed\n",
		snap.Routed, snap.Spilled, snap.Replicated, snap.Failovers, snap.Completed)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rfly-federate:", err)
	os.Exit(1)
}
