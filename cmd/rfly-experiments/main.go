// Command rfly-experiments regenerates every table and figure of the RFly
// paper's evaluation (§7) and prints the same rows/series the paper
// reports, plus the paper's reference values for side-by-side comparison.
//
// Usage:
//
//	rfly-experiments [-fig all|6|9|10|11|12|13|14|range|power] [-seed N]
//	                 [-trials N] [-csv dir]
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"rfly/internal/experiments"
	"rfly/internal/relay"
	"rfly/internal/rng"
	"rfly/internal/stats"
)

func main() {
	fig := flag.String("fig", "all", "which figure/table to regenerate (all, 6, 9, 10, 11, 12, 13, 14, range, power, aloha, selfloc, chain, 3d, ablation, floor, coverage, miller, faults, mission, service, swarm, plan, jam)")
	seed := flag.Uint64("seed", 1, "experiment seed")
	trials := flag.Int("trials", 0, "override trial count (0 = paper's count)")
	csvDir := flag.String("csv", "", "directory to write CSV series into")
	jsonPath := flag.String("json", "", "write the full suite as JSON to this path ('-' = stdout)")
	flag.Parse()

	// SIGINT/SIGTERM cancel the context threaded through the supervised
	// mission (and any other deadline-aware experiment).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *jsonPath != "" {
		if err := writeJSON(*jsonPath, *seed); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	run := func(name string) bool { return *fig == "all" || *fig == name }
	wrote := false
	if run("9") {
		figure9(*trials, *seed)
		wrote = true
	}
	if run("10") {
		figure10(*trials, *seed)
		wrote = true
	}
	if run("range") {
		rangeTable()
		wrote = true
	}
	if run("power") {
		powerTable()
		wrote = true
	}
	if run("11") {
		figure11(*trials, *seed, *csvDir)
		wrote = true
	}
	if run("12") {
		figure12(*trials, *seed)
		wrote = true
	}
	if run("13") {
		figure13(*trials, *seed, *csvDir)
		wrote = true
	}
	if run("14") {
		figure14(*trials, *seed, *csvDir)
		wrote = true
	}
	if run("6") {
		figure6(*seed, *csvDir)
		wrote = true
	}
	if run("aloha") {
		antiCollision(*seed)
		wrote = true
	}
	if run("selfloc") {
		selfLoc(*trials, *seed)
		wrote = true
	}
	if run("chain") {
		daisyChain(*seed)
		wrote = true
	}
	if run("3d") {
		threeD(*trials, *seed)
		wrote = true
	}
	if run("ablation") {
		ablations(*seed)
		wrote = true
	}
	if run("floor") {
		crossFloor(*trials, *seed)
		wrote = true
	}
	if run("coverage") {
		coverage(*seed)
		wrote = true
	}
	if run("miller") {
		miller(*trials, *seed)
		wrote = true
	}
	if run("faults") {
		faultMatrix(*trials, *seed, *csvDir)
		wrote = true
	}
	if run("mission") {
		mission(ctx, *seed, *csvDir)
		wrote = true
	}
	if run("service") {
		service(*seed, *csvDir)
		wrote = true
	}
	if run("swarm") {
		swarmMatrix(*trials, *seed, *csvDir)
		wrote = true
	}
	if run("plan") {
		planMatrix(ctx, *seed, *csvDir)
		wrote = true
	}
	if run("jam") {
		jamMatrix(ctx, *seed, *csvDir)
		wrote = true
	}
	if !wrote {
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", *fig)
		os.Exit(2)
	}
}

func header(title string) {
	fmt.Printf("\n%s\n%s\n", title, strings.Repeat("=", len(title)))
}

func count(n, def int) int {
	if n > 0 {
		return n
	}
	return def
}

func figure9(trials int, seed uint64) {
	header("Figure 9 — Self-interference isolation CDFs (100 trials)")
	res := experiments.Figure9(count(trials, 100), seed)
	med, amed := res.Medians()
	paper := map[relay.Link]float64{
		relay.InterDownlink: 110, relay.InterUplink: 92,
		relay.IntraDownlink: 77, relay.IntraUplink: 64,
	}
	fmt.Printf("%-16s %-14s %-14s %-14s\n", "link", "RFly median", "paper", "analog median")
	for _, l := range experiments.Links {
		fmt.Printf("%-16s %-14.1f %-14.0f %-14.1f\n", l, med[l], paper[l], amed[l])
	}
	for _, l := range experiments.Links {
		fmt.Println(stats.NewCDF(res.RFly[l]).RenderASCII("RFly "+l.String()+" isolation (dB)", 60, 8))
	}
}

func figure10(trials int, seed uint64) {
	header("Figure 10 — Phase error, mirrored vs no-mirror (50 trials)")
	res := experiments.Figure10(count(trials, 50), seed)
	m := stats.Summarize(res.MirroredDeg)
	n := stats.Summarize(res.NoMirrorDeg)
	fmt.Printf("mirrored: median %.2f° p99 %.2f°   (paper: 0.34°, 1.2°)\n", m.Median, m.P99)
	fmt.Printf("no-mirror: median %.1f° p90 %.1f°  (paper: ~uniform random)\n", n.Median, n.P90)
	fmt.Println(stats.NewCDF(res.MirroredDeg).RenderASCII("mirrored phase error (deg)", 60, 8))
}

func rangeTable() {
	header("Eq. 3/4 — Isolation vs maximum stable range")
	fmt.Printf("%-14s %-12s\n", "isolation dB", "range m")
	for _, row := range experiments.IsolationRangeTable() {
		fmt.Printf("%-14.0f %-12.2f\n", row.IsolationDB, row.RangeM)
	}
	fmt.Println("paper checkpoints: 30 dB → 0.75 m, 80 dB → 238 m, 70 dB → ~83 m")
}

func powerTable() {
	header("§6.2 — Relay power budget on the drone battery")
	row := experiments.PowerBudgetTable()
	fmt.Printf("power %.1f W, battery draw %.2f A, %.1f%% of battery capability (paper: 5.8 W, 0.49 A, <3%%)\n",
		row.PowerWatts, row.BatteryAmps, 100*row.BatteryFraction)
}

func figure11(trials int, seed uint64, csvDir string) {
	header("Figure 11 — Reading rate vs distance")
	cfg := experiments.DefaultFigure11Config()
	if trials > 0 {
		cfg.TrialsPerPoint = trials
	}
	res := experiments.Figure11(cfg, seed)
	fmt.Printf("%-10s %-20s %-20s %-20s\n", "dist m", "no-relay LoS%", "relay LoS%", "relay NLoS%")
	n := cfg.TrialsPerPoint
	ci := func(pct float64) string {
		lo, hi := stats.WilsonInterval(int(pct/100*float64(n)+0.5), n)
		return fmt.Sprintf("%3.0f [%3.0f,%3.0f]", pct, 100*lo, 100*hi)
	}
	for i, d := range res.DistancesM {
		fmt.Printf("%-10.1f %-20s %-20s %-20s\n", d, ci(res.NoRelayLoS[i]), ci(res.RelayLoS[i]), ci(res.RelayNLoS[i]))
	}
	fmt.Println("paper shape: no-relay → 0 by 10 m; relay LoS 100% past 50 m; relay NLoS ~75% at 55 m")
	if csvDir != "" {
		var b strings.Builder
		b.WriteString("dist,no_relay_los,relay_los,relay_nlos\n")
		for i, d := range res.DistancesM {
			fmt.Fprintf(&b, "%g,%g,%g,%g\n", d, res.NoRelayLoS[i], res.RelayLoS[i], res.RelayNLoS[i])
		}
		writeCSV(csvDir, "figure11.csv", b.String())
	}
}

func faultMatrix(trials int, seed uint64, csvDir string) {
	header("Fault matrix — read rate and localization error per fault class")
	cfg := experiments.DefaultFaultMatrixConfig()
	if trials > 0 {
		cfg.Trials = trials
	}
	res := experiments.FaultMatrix(cfg, seed)
	fmt.Printf("%-20s %-9s %-9s %-9s %-11s %-11s %s\n",
		"class", "nofault%", "nominal%", "recover%", "naive-loc m", "robust-loc m", "relocks")
	locCell := func(v float64) string {
		if math.IsNaN(v) {
			return "-"
		}
		return fmt.Sprintf("%.2f", v)
	}
	for _, r := range res.Rows {
		fmt.Printf("%-20s %-9.1f %-9.1f %-9.1f %-11s %-11s %d\n",
			r.Class, r.NoFaultPct, r.NominalPct, r.RecoveryPct,
			locCell(r.NaiveLocErrM), locCell(r.RobustLocErrM), r.Relocks)
	}
	fmt.Printf("clean baseline %.1f%% (Figure 11 relay LoS at %g m)\n", res.CleanPct, cfg.ReaderTagDist)
	fmt.Println("recovery = watchdog re-lock + MAC retry + gain reprogram + station-keep + battery swap")
	if csvDir != "" {
		var b strings.Builder
		b.WriteString("class,nofault_pct,nominal_pct,recovery_pct,naive_loc_m,robust_loc_m,relocks\n")
		for _, r := range res.Rows {
			fmt.Fprintf(&b, "%v,%g,%g,%g,%g,%g,%d\n", r.Class,
				r.NoFaultPct, r.NominalPct, r.RecoveryPct, r.NaiveLocErrM, r.RobustLocErrM, r.Relocks)
		}
		writeCSV(csvDir, "fault_matrix.csv", b.String())
	}
}

func swarmMatrix(trials int, seed uint64, csvDir string) {
	header("Swarm resilience — inventory and localization vs fleet size × relay kills")
	cfg := experiments.DefaultSwarmMatrixConfig()
	if trials > 0 {
		cfg.Trials = trials
	}
	res := experiments.SwarmMatrix(cfg, seed)
	fmt.Printf("%-7s %-6s %-10s %-7s %-7s %-7s %-9s %-11s %s\n",
		"relays", "kills", "complete%", "read%", "tags%", "locOK%", "loc-err m", "promotions", "latency")
	for _, r := range res.Rows {
		loc := "-"
		if !math.IsNaN(r.LocErrM) {
			loc = fmt.Sprintf("%.2f", r.LocErrM)
		}
		fmt.Printf("%-7d %-6d %-10.1f %-7.1f %-7.1f %-7.1f %-9s %-11.2f %.2f\n",
			r.Relays, r.Kills, r.CompletionPct, r.ReadPct, r.TagsPct, r.LocOKPct,
			loc, r.MeanPromotions, r.MeanLatencyTicks)
	}
	fmt.Println("each kill destroys the serving primary at a random tick; shadows are hot (pre-locked)")
	if csvDir != "" {
		writeCSV(csvDir, "swarm_matrix.csv", res.CSV())
	}
}

func figure12(trials int, seed uint64) {
	header("Figure 12 — Localization error CDF across the facility")
	res := experiments.Figure12(count(trials, 100), seed)
	s := stats.Summarize(res.ErrorsM)
	fmt.Printf("N=%d (failed captures: %d) median %.0f cm, p90 %.0f cm  (paper: 19 cm, 53 cm)\n",
		s.N, res.Failed, 100*s.Median, 100*s.P90)
	fmt.Println(stats.NewCDF(res.ErrorsM).RenderASCII("localization error (m)", 60, 8))
}

func figure13(trials int, seed uint64, csvDir string) {
	header("Figure 13 — Localization error vs aperture (SAR vs RSSI)")
	res := experiments.Figure13(count(trials, 20), seed)
	fmt.Print(res.SAR.Rows("aperture_m", "err_m"))
	fmt.Print(res.RSSI.Rows("aperture_m", "err_m"))
	fmt.Println("paper shape: SAR 22 cm → <5 cm by 1 m aperture; RSSI ~1 m (≈20× worse)")
	if csvDir != "" {
		writeCSV(csvDir, "figure13_sar.csv", res.SAR.CSV())
		writeCSV(csvDir, "figure13_rssi.csv", res.RSSI.CSV())
	}
}

func figure14(trials int, seed uint64, csvDir string) {
	header("Figure 14 — Localization error vs projected distance")
	res := experiments.Figure14(count(trials, 50), seed)
	fmt.Print(res.SAR.Rows("dist_m", "err_m"))
	fmt.Print(res.RSSI.Rows("dist_m", "err_m"))
	fmt.Println("paper shape: SAR <18 cm median at 40 m; p90 blows up past 50 m as SNR < 3 dB; RSSI much worse")
	if csvDir != "" {
		writeCSV(csvDir, "figure14_sar.csv", res.SAR.CSV())
		writeCSV(csvDir, "figure14_rssi.csv", res.RSSI.CSV())
	}
}

func figure6(seed uint64, csvDir string) {
	header("Figure 6 — P(x,y) heatmaps (LoS and strong multipath)")
	los, mp, err := experiments.Figure6(seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, r := range []experiments.Figure6Result{los, mp} {
		fmt.Printf("\n[%s] tag at (%.2f, %.2f), estimate (%.2f, %.2f), error %.0f cm, %d candidate peaks\n",
			r.Name, r.TagPos.X, r.TagPos.Y, r.Estimate.X, r.Estimate.Y, 100*r.ErrorM, len(r.Candidates))
		fmt.Print(r.Heatmap.RenderASCII())
	}
	fmt.Println("paper: LoS error < 7 cm; multipath scene shows ghost peaks farther from the trajectory")
	if csvDir != "" {
		writeCSV(csvDir, "figure6_los_heatmap.csv", los.Heatmap.CSV())
		writeCSV(csvDir, "figure6_multipath_heatmap.csv", mp.Heatmap.CSV())
	}
}

func antiCollision(seed uint64) {
	header("Substrate — Gen2 anti-collision through the relay")
	points := experiments.AntiCollision([]int{1, 4, 8, 16, 32, 64}, seed)
	fmt.Printf("%-8s %-8s %-8s %-12s %-12s %-8s %-10s %-10s\n",
		"tags", "rounds", "slots", "collisions", "efficiency", "finalQ", "airtime", "tags/s")
	for _, p := range points {
		fmt.Printf("%-8d %-8d %-8d %-12d %-12.2f %-8d %-10s %-10.0f\n",
			p.Tags, p.Rounds, p.Slots, p.Collisions, p.Efficiency, p.FinalQ,
			p.Airtime.Round(time.Millisecond/10), p.TagsPerSecond)
	}
	fmt.Println("framed-ALOHA optimum efficiency ≈ 0.37; at these rates a drone pass")
	fmt.Println("inventories hundreds of tags per second of airtime — the paper's")
	fmt.Println("month→day cycle-count speedup is protocol-feasible")
}

func selfLoc(trials int, seed uint64) {
	header("Extension — drone self-localization from the reader–relay half-link (§5.1/§9)")
	res := experiments.SelfLocalization(count(trials, 30), seed)
	s := stats.Summarize(res.ErrorsM)
	fmt.Printf("N=%d (failed %d): median %.0f cm, p90 %.0f cm\n",
		s.N, res.Failed, 100*s.Median, 100*s.P90)
	fmt.Println("the embedded tag's phases alone pin the drone trajectory's absolute placement")
}

func daisyChain(seed uint64) {
	header("Extension — daisy-chained relay range (§4.3/§9)")
	rows := experiments.DaisyChainRange(experiments.DaisyChainSuiteHops, seed)
	fmt.Printf("%-6s %-14s %-12s %-16s\n", "hops", "total range m", "tag dBm", "per-leg cap m")
	for _, r := range rows {
		fmt.Printf("%-6d %-14.1f %-12.1f %-16.1f\n", r.Hops, r.TotalRangeM, r.TagRxDBm, r.StabilityCapM)
	}
	fmt.Println("each hop restarts the Eq. 3/4 stability budget → range grows linearly in hops")
}

func threeD(trials int, seed uint64) {
	header("Extension — 3D localization from a planar trajectory (§5.2)")
	res := experiments.Localization3D(count(trials, 20), seed)
	xy := stats.Summarize(res.ErrorsXY)
	z := stats.Summarize(res.ErrorsZ)
	fmt.Printf("N=%d (failed %d): horizontal median %.0f cm, height median %.0f cm\n",
		xy.N, res.Failed, 100*xy.Median, 100*z.Median)
	fmt.Println("a lawnmower flight resolves which shelf LEVEL an item sits on")
}

func ablations(seed uint64) {
	header("Ablations — what each design choice buys")
	// 1. Mirrored architecture.
	ph := experiments.Figure10(20, seed)
	fmt.Printf("mirrored synthesizers : phase error %6.2f° median → %6.1f° without (random)\n",
		stats.Quantile(ph.MirroredDeg, 0.5), stats.Quantile(ph.NoMirrorDeg, 0.5))
	// 2. Downlink filter order vs inter-link isolation.
	fmt.Printf("LPF order             : ")
	for _, taps := range []int{31, 63, 127} {
		cfg := relay.DefaultConfig()
		cfg.LPFTaps = taps
		r := relay.New(cfg, rng.New(seed+uint64(taps)))
		r.Lock(0)
		iso, err := r.MeasureIsolation(relay.InterDownlink, rng.New(seed+99))
		if err != nil {
			fmt.Printf("%d taps → error: %v   ", taps, err)
			continue
		}
		fmt.Printf("%d taps → %.0f dB   ", taps, iso)
	}
	fmt.Println()
	// 3. Analog-relay baseline.
	a := relay.NewAnalogRelay(rng.New(seed))
	analogIso, _ := a.MeasureIsolation(relay.InterDownlink, rng.New(seed+7))
	fmt.Printf("analog A&F baseline   : %.0f dB isolation (all four links)\n", analogIso)
	fmt.Println("(SAR grid resolution and phase-only weighting: see the Benchmark* ablations)")
}

func crossFloor(trials int, seed uint64) {
	header("Extension — cross-floor coverage (§7.2 spans floors)")
	res := experiments.CrossFloor(count(trials, 40), seed)
	fmt.Printf("same floor, direct reader : %3.0f%%\n", res.SameFloorPct)
	fmt.Printf("cross floor, direct       : %3.0f%%\n", res.CrossDirect)
	fmt.Printf("cross floor, via relay    : %3.0f%%\n", res.CrossRelayPct)
	fmt.Println("the relay's powered reader↔relay half-link punches through the slab")
}

func coverage(seed uint64) {
	header("Motivation — §1 month→day inventory cycles, derived end to end")
	rows := experiments.CoverageTable(seed)
	fmt.Printf("%-22s %-9s %-9s %-8s %-12s %-12s %-9s\n",
		"scenario", "area m²", "tags", "sorties", "drone cycle", "manual(4p)", "speedup")
	for _, r := range rows {
		limited := ""
		if r.ReadLimited {
			limited = "*"
		}
		fmt.Printf("%-22s %-9.0f %-9d %-8d %-12s %-12s %-8.0f×%s\n",
			r.Scenario, r.AreaM2, r.Tags, r.Plan.Sorties,
			r.Cycle.Total.Round(time.Minute), r.Manual.Round(time.Hour),
			r.Speedup, limited)
	}
	fmt.Println("* read-throughput limited (flight stretched to give every tag a slot)")
	fmt.Println("throughput is derived from the Gen2 framed-ALOHA substrate, flight time")
	fmt.Println("from the Bebop 2's endurance — the month→day claim falls out, unasserted")
}

func miller(trials int, seed uint64) {
	header("Substrate — FM0 vs Miller robustness (waveform decode)")
	res := experiments.MillerRobustness(count(trials, 40), seed)
	fmt.Printf("%-10s", "chip SNR")
	modes := []string{"FM0", "Miller-2", "Miller-4", "Miller-8"}
	for _, m := range modes {
		fmt.Printf(" %-10s", m)
	}
	fmt.Println()
	for _, snr := range res.SNRsdB {
		fmt.Printf("%+-10.0f", snr)
		for _, p := range res.Points {
			if p.ChipSNRdB == snr {
				fmt.Printf(" %-10.0f", p.SuccessPct)
			}
		}
		fmt.Println()
	}
	fmt.Println("Miller-2 buys ~6 dB over FM0 at 2.3× the airtime; below that,")
	fmt.Println("preamble sync detection (not bit energy) binds, so M=4/8 add")
	fmt.Println("airtime without further detection margin")
}

func mission(ctx context.Context, seed uint64, csvDir string) {
	header("Supervised mission — checkpointed multi-sortie corridor run")
	csv, err := experiments.MissionCSV(ctx, seed)
	if err != nil {
		fmt.Print(csv)
		fmt.Fprintf(os.Stderr, "mission interrupted: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(csv)
	fmt.Println("per-sortie read rates under a fault schedule spanning sortie boundaries;")
	fmt.Println("the same CSV emerges after any mid-mission kill/resume (see the chaos harness)")
	if csvDir != "" {
		writeCSV(csvDir, "mission.csv", csv)
	}
}

func service(seed uint64, csvDir string) {
	header("Mission service — fleet batching under a full-queue burst")
	sum, err := experiments.ServiceTable(seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%-16s %-9s %-8s %-11s %-7s %-7s\n",
		"region", "requests", "sorties", "mean batch", "reads", "loc ok")
	for _, r := range sum.Rows {
		fmt.Printf("%-16s %-9d %-8d %-11.2f %-7d %-7d\n",
			r.Region, r.Requests, r.Sorties, r.MeanBatch, r.Reads, r.LocOK)
	}
	fmt.Printf("%d requests flew as %d sorties on %d shards (mean batch %.2f, %d requests shared a sortie)\n",
		sum.Requests, sum.Batches, sum.Shards, sum.MeanBatchSize, sum.BatchedRequests)
	fmt.Println("admission settles before the shards start, so the coalescing here is")
	fmt.Println("deterministic — the serving benchmark (rfly-load) measures the same")
	fmt.Println("layer under open-loop pressure instead")
	if csvDir != "" {
		writeCSV(csvDir, "service.csv", sum.CSV())
	}
}

func planMatrix(ctx context.Context, seed uint64, csvDir string) {
	header("Relay positioning — planner tours over the Fig. 6 warehouse, solved and flown")
	res, err := experiments.PlanMatrix(ctx, experiments.DefaultPlanMatrixConfig(), seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%-16s %-9s %-6s %-10s %-8s %-9s %-10s %-10s %s\n",
		"planner", "stations", "tags", "covered%", "path m", "flight s", "energy J", "J per tag", "inventoried%")
	for _, r := range res.Rows {
		cov := 0.0
		if r.Tags > 0 {
			cov = 100 * float64(r.Covered) / float64(r.Tags)
		}
		fmt.Printf("%-16s %-9d %-6d %-10.1f %-8.1f %-9.1f %-10.1f %-10.3f %.1f\n",
			r.Planner, r.Stations, r.Tags, cov, r.PathM, r.FlightS, r.EnergyJ, r.EnergyPerTagJ,
			r.InventoriedPct)
	}
	fmt.Println("both tours are flown through the Gen2 MAC; the pinned regression is that")
	fmt.Println("the coverage-aware set-cover tour never pays more energy per inventoried")
	fmt.Println("tag than the nearest-uncovered greedy baseline")
	if csvDir != "" {
		writeCSV(csvDir, "plan_matrix.csv", res.CSV())
	}
}

func jamMatrix(ctx context.Context, seed uint64, csvDir string) {
	header("Adversarial RF — inventory completion vs shelf density × jammer power")
	res, err := experiments.JamMatrix(ctx, experiments.DefaultJamMatrixConfig(), seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%-12s %-6s %-9s %-11s %-7s %-7s %s\n",
		"density/m", "tags", "jam dBm", "complete%", "finalQ", "rounds", "reads")
	for _, r := range res.Rows {
		fmt.Printf("%-12g %-6d %-9g %-11.1f %-7d %-7d %d\n",
			r.DensityPerM, r.Tags, r.JamDBm, r.CompletionPct, r.FinalQ, r.Rounds, r.Reads)
	}
	fmt.Println("a barrage jammer beside the rack, swept from inert to overwhelming, on a")
	fmt.Println("reader-dense multi-cell floor; completion is monotone non-increasing in")
	fmt.Println("jammer power at every density (asserted in tests and CI)")
	if csvDir != "" {
		writeCSV(csvDir, "jam_matrix.csv", res.CSV())
	}
}

func writeCSV(dir, name, content string) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	fmt.Printf("wrote %s\n", path)
}
