package main

import (
	"encoding/json"
	"fmt"
	"os"

	"rfly/internal/experiments"
	"rfly/internal/stats"
)

// jsonReport is the machine-readable form of the full experiment suite,
// written by the -json flag for downstream analysis/plotting.
type jsonReport struct {
	Seed uint64 `json:"seed"`

	Figure9 struct {
		RFlyMedianDB   map[string]float64 `json:"rfly_median_db"`
		AnalogMedianDB map[string]float64 `json:"analog_median_db"`
	} `json:"figure9"`

	Figure10 struct {
		MirroredMedianDeg float64 `json:"mirrored_median_deg"`
		MirroredP99Deg    float64 `json:"mirrored_p99_deg"`
		NoMirrorMedianDeg float64 `json:"nomirror_median_deg"`
	} `json:"figure10"`

	Figure11 struct {
		DistancesM []float64 `json:"distances_m"`
		NoRelayLoS []float64 `json:"no_relay_los_pct"`
		RelayLoS   []float64 `json:"relay_los_pct"`
		RelayNLoS  []float64 `json:"relay_nlos_pct"`
	} `json:"figure11"`

	Figure12 struct {
		MedianM float64 `json:"median_m"`
		P90M    float64 `json:"p90_m"`
		N       int     `json:"n"`
		Failed  int     `json:"failed"`
	} `json:"figure12"`

	Figure13 struct {
		AperturesM []float64 `json:"apertures_m"`
		SARMedianM []float64 `json:"sar_median_m"`
		RSSIMedM   []float64 `json:"rssi_median_m"`
	} `json:"figure13"`

	Figure14 struct {
		DistancesM []float64 `json:"distances_m"`
		SARMedianM []float64 `json:"sar_median_m"`
		RSSIMedM   []float64 `json:"rssi_median_m"`
	} `json:"figure14"`

	IsolationRange []experiments.IsolationRangeRow  `json:"isolation_range"`
	PowerBudget    experiments.PowerBudgetRow       `json:"power_budget"`
	AntiCollision  []experiments.AntiCollisionPoint `json:"anti_collision"`
	DaisyChain     []experiments.DaisyChainRow      `json:"daisy_chain"`

	SelfLocalization struct {
		MedianM float64 `json:"median_m"`
		P90M    float64 `json:"p90_m"`
	} `json:"self_localization"`

	CrossFloor experiments.CrossFloorResult `json:"cross_floor"`

	Coverage []struct {
		Scenario     string  `json:"scenario"`
		AreaM2       float64 `json:"area_m2"`
		Tags         int     `json:"tags"`
		DroneMinutes float64 `json:"drone_minutes"`
		ManualHours  float64 `json:"manual_hours"`
		Speedup      float64 `json:"speedup"`
	} `json:"coverage"`
}

// writeJSON regenerates the full suite at reduced-but-meaningful trial
// counts and writes one JSON document.
func writeJSON(path string, seed uint64) error {
	var rep jsonReport
	rep.Seed = seed

	f9 := experiments.Figure9(60, seed)
	med, amed := f9.Medians()
	rep.Figure9.RFlyMedianDB = map[string]float64{}
	rep.Figure9.AnalogMedianDB = map[string]float64{}
	for _, l := range experiments.Links {
		rep.Figure9.RFlyMedianDB[l.String()] = med[l]
		rep.Figure9.AnalogMedianDB[l.String()] = amed[l]
	}

	f10 := experiments.Figure10(50, seed)
	m := stats.Summarize(f10.MirroredDeg)
	rep.Figure10.MirroredMedianDeg = m.Median
	rep.Figure10.MirroredP99Deg = m.P99
	rep.Figure10.NoMirrorMedianDeg = stats.Quantile(f10.NoMirrorDeg, 0.5)

	cfg := experiments.DefaultFigure11Config()
	cfg.TrialsPerPoint = 40
	f11 := experiments.Figure11(cfg, seed)
	rep.Figure11.DistancesM = f11.DistancesM
	rep.Figure11.NoRelayLoS = f11.NoRelayLoS
	rep.Figure11.RelayLoS = f11.RelayLoS
	rep.Figure11.RelayNLoS = f11.RelayNLoS

	f12 := experiments.Figure12(60, seed)
	s12 := stats.Summarize(f12.ErrorsM)
	rep.Figure12.MedianM = s12.Median
	rep.Figure12.P90M = s12.P90
	rep.Figure12.N = s12.N
	rep.Figure12.Failed = f12.Failed

	f13 := experiments.Figure13(12, seed)
	rep.Figure13.AperturesM = f13.SAR.X
	rep.Figure13.SARMedianM = f13.SAR.Med
	rep.Figure13.RSSIMedM = f13.RSSI.Med

	f14 := experiments.Figure14(15, seed)
	rep.Figure14.DistancesM = f14.SAR.X
	rep.Figure14.SARMedianM = f14.SAR.Med
	rep.Figure14.RSSIMedM = f14.RSSI.Med

	rep.IsolationRange = experiments.IsolationRangeTable()
	rep.PowerBudget = experiments.PowerBudgetTable()
	rep.AntiCollision = experiments.AntiCollision([]int{1, 8, 32}, seed)
	rep.DaisyChain = experiments.DaisyChainRange(experiments.DaisyChainSuiteHops, seed)

	sl := experiments.SelfLocalization(20, seed)
	rep.SelfLocalization.MedianM = stats.Quantile(sl.ErrorsM, 0.5)
	rep.SelfLocalization.P90M = stats.Quantile(sl.ErrorsM, 0.9)

	rep.CrossFloor = experiments.CrossFloor(30, seed)

	for _, r := range experiments.CoverageTable(seed) {
		rep.Coverage = append(rep.Coverage, struct {
			Scenario     string  `json:"scenario"`
			AreaM2       float64 `json:"area_m2"`
			Tags         int     `json:"tags"`
			DroneMinutes float64 `json:"drone_minutes"`
			ManualHours  float64 `json:"manual_hours"`
			Speedup      float64 `json:"speedup"`
		}{r.Scenario, r.AreaM2, r.Tags, r.Cycle.Total.Minutes(), r.Manual.Hours(), r.Speedup})
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if path == "-" {
		_, err = os.Stdout.Write(append(data, '\n'))
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d bytes)\n", path, len(data))
	return nil
}
