// rfly-serve is the RFly mission service daemon: it fronts the
// internal/fleet sharded scheduler with an HTTP/JSON API.
//
//	POST   /v1/missions            submit an inventory mission (202; 429 +
//	                               Retry-After under backpressure)
//	GET    /v1/missions/{id}       poll a mission
//	GET    /v1/missions/{id}/trace flight-recorder span dump for the sortie
//	                               that served the mission
//	DELETE /v1/missions/{id}       cancel a mission
//	GET    /healthz                liveness (503 while draining)
//	GET    /metrics                queue depth, shard utilization, batch and
//	                               latency histograms, obs counter registry
//
// SIGINT/SIGTERM triggers a graceful drain: admission stops, in-flight
// sorties finish, every shard's final engine checkpoint is written to
// -ckpt-dir, and the process exits 0.
//
// Usage:
//
//	rfly-serve [-addr :8080] [-shards 4] [-queue 64] [-batch 8]
//	           [-sorties 1] [-ticks 12] [-ckpt-dir DIR] [-pprof ADDR]
//	           [-req-timeout 10s]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"rfly/internal/fleet"
)

func main() {
	addr := flag.String("addr", ":8080", "HTTP listen address")
	shards := flag.Int("shards", 4, "shard worker pool size (concurrent sorties)")
	queueCap := flag.Int("queue", 0, "admission queue capacity (0 = 16×shards)")
	maxBatch := flag.Int("batch", 8, "max compatible requests coalesced into one sortie")
	sorties := flag.Int("sorties", 1, "sorties per service mission")
	ticks := flag.Int("ticks", 12, "ticks per sortie")
	ckptDir := flag.String("ckpt-dir", "", "directory for drain-time shard checkpoints (empty = skip)")
	pprofAddr := flag.String("pprof", "", "pprof listen address (e.g. localhost:6060; empty = disabled)")
	drainTimeout := flag.Duration("drain-timeout", 60*time.Second, "graceful drain bound")
	reqTimeout := flag.Duration("req-timeout", 10*time.Second, "per-request handler timeout (0 = unbounded)")
	flag.Parse()

	if *pprofAddr != "" {
		go func() {
			// net/http/pprof registers on DefaultServeMux; serve it on
			// its own listener so profiling never shares the API port.
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "rfly-serve: pprof listener: %v\n", err)
			}
		}()
		fmt.Printf("pprof on http://%s/debug/pprof/\n", *pprofAddr)
	}

	sched, err := fleet.New(fleet.Config{
		Shards:         *shards,
		QueueCap:       *queueCap,
		MaxBatch:       *maxBatch,
		Sorties:        *sorties,
		TicksPerSortie: *ticks,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "rfly-serve:", err)
		os.Exit(1)
	}
	sched.Start()

	// A stalled or hostile client must not pin a connection forever:
	// ReadHeaderTimeout bounds the slow-loris window, IdleTimeout reaps
	// parked keep-alives, and the per-request context timeout cuts off
	// any handler a dead client would otherwise hold open. Shard workers
	// never block on a request context, so a timed-out request costs
	// only its own goroutine.
	srv := &http.Server{
		Addr:              *addr,
		Handler:           fleet.WithRequestTimeout(fleet.NewHandler(sched), *reqTimeout),
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	errc := make(chan error, 1)
	go func() {
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()
	cfg := sched.Config()
	fmt.Printf("rfly-serve on %s: %d shards, queue %d, batch %d, %d×%d-tick missions\n",
		*addr, cfg.Shards, cfg.QueueCap, cfg.MaxBatch, cfg.Sorties, cfg.TicksPerSortie)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "rfly-serve:", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	// Graceful drain: stop the listener (pending responses finish),
	// refuse new work, let in-flight sorties land and checkpoint.
	fmt.Println("rfly-serve: draining (finishing in-flight sorties)")
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		fmt.Fprintln(os.Stderr, "rfly-serve: http shutdown:", err)
	}
	if err := sched.Drain(dctx); err != nil {
		fmt.Fprintln(os.Stderr, "rfly-serve:", err)
		os.Exit(1)
	}
	if *ckptDir != "" {
		if err := os.MkdirAll(*ckptDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "rfly-serve:", err)
			os.Exit(1)
		}
		for i := 0; i < cfg.Shards; i++ {
			ckpt := sched.Lessor().Checkpoint(i)
			if ckpt == nil {
				continue // shard never flew a mission
			}
			path := filepath.Join(*ckptDir, fmt.Sprintf("shard-%d.ckpt", i))
			if err := os.WriteFile(path, ckpt, 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "rfly-serve:", err)
				os.Exit(1)
			}
			fmt.Printf("checkpointed shard %d -> %s (%d bytes)\n", i, path, len(ckpt))
		}
	}
	snap := sched.Metrics().Snapshot()
	fmt.Printf("drained: %d completed, %d rejected, %d batches (mean size %.2f)\n",
		snap.Completed, snap.Rejected, snap.Batches, snap.MeanBatchSize)
}
