// Command rfly-relaylab is the relay bench: it builds a relay, measures
// the four self-interference isolations (the §7.1 spectrum-analyzer
// procedure), reports the gain plan the §6.1 programming rules produce,
// the resulting Eq. 3/4 stable range, and the phase-preservation quality.
//
// Usage:
//
//	rfly-relaylab [-seed N] [-trials N] [-nomirror] [-lpftaps N] [-bpftaps N]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	ossignal "os/signal"
	"syscall"

	"rfly/internal/experiments"
	"rfly/internal/relay"
	"rfly/internal/rng"
	"rfly/internal/signal"
	"rfly/internal/stats"
)

func main() {
	seed := flag.Uint64("seed", 1, "build/measurement seed")
	trials := flag.Int("trials", 25, "isolation measurement trials")
	noMirror := flag.Bool("nomirror", false, "use independent uplink synthesizers (baseline)")
	lpfTaps := flag.Int("lpftaps", 0, "override downlink LPF tap count")
	bpfTaps := flag.Int("bpftaps", 0, "override uplink BPF tap count")
	spectrum := flag.Bool("spectrum", false, "render the baseband filter responses")
	chain := flag.Int("chain", 0, "also evaluate a daisy chain of N relays (§4.3/§9)")
	flag.Parse()

	cfg := relay.DefaultConfig()
	cfg.Mirrored = !*noMirror
	if *lpfTaps > 0 {
		cfg.LPFTaps = *lpfTaps
	}
	if *bpfTaps > 0 {
		cfg.BPFTaps = *bpfTaps
	}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	src := rng.New(*seed)
	r := relay.New(cfg, src)
	r.Lock(0)

	fmt.Printf("relay build (seed %d): antenna isolation %.1f dB, mirrored=%v\n",
		*seed, r.AntennaIsolationDB(), cfg.Mirrored)
	fmt.Printf("filters: LPF %.0f kHz/%d taps, BPF %.0f±%.0f kHz/%d taps, shift %.1f MHz\n\n",
		cfg.LPFCutoff/1e3, cfg.LPFTaps, cfg.BPFCenter/1e3, cfg.BPFHalfBW/1e3, cfg.BPFTaps,
		cfg.ShiftHz/1e6)

	if *spectrum {
		fs := cfg.Fs
		lpf := signal.FilterResponse(r.LPF, -2.2e6, 2.2e6, fs, 88)
		fmt.Println(lpf.RenderASCII("downlink low-pass response (dB)", 10, -100))
		bpf := signal.FilterResponse(r.BPF, -2.2e6, 2.2e6, fs, 88)
		fmt.Println(bpf.RenderASCII("uplink band-pass response (dB)", 10, -100))
	}

	// SIGINT/SIGTERM abandon the measurement campaign cleanly: partial
	// results are discarded and the exit code reports the interruption.
	ctx, stop := ossignal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Isolation measurements.
	samples := map[relay.Link][]float64{}
	trial := src.Split("trials")
	for i := 0; i < *trials; i++ {
		if err := ctx.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "interrupted after %d/%d trials\n", i, *trials)
			os.Exit(1)
		}
		for _, l := range experiments.Links {
			iso, err := r.MeasureIsolation(l, trial)
			if err != nil {
				fmt.Printf("isolation measurement failed for %v: %v\n", l, err)
				continue
			}
			samples[l] = append(samples[l], iso)
		}
	}
	fmt.Printf("%-16s %-10s %-10s %-10s\n", "link", "median dB", "p10", "p90")
	var iso relay.IsolationReport
	for _, l := range experiments.Links {
		s := stats.Summarize(samples[l])
		fmt.Printf("%-16s %-10.1f %-10.1f %-10.1f\n", l, s.Median, s.P10, s.P90)
		switch l {
		case relay.InterDownlink:
			iso.InterDownlinkDB = s.Median
		case relay.InterUplink:
			iso.InterUplinkDB = s.Median
		case relay.IntraDownlink:
			iso.IntraDownlinkDB = s.Median
		case relay.IntraUplink:
			iso.IntraUplinkDB = s.Median
		}
	}

	// Gain programming per §6.1.
	plan := r.ProgramGains(iso)
	fmt.Printf("\ngain plan: downlink %.1f dB (VGA %.1f), uplink %.1f dB, stable=%v\n",
		plan.DownlinkGainDB, plan.DownVGADB, plan.UplinkGainDB, plan.Stable)

	// Eq. 3/4 stable range at the weakest isolation.
	min := iso.Min()
	fmt.Printf("weakest isolation %.1f dB → max stable reader–relay range %.1f m (Eq. 4)\n",
		min, relay.MaxStableRangeM(min, cfg.CenterFreq))

	// Phase preservation (Fig. 10 procedure, 20 quick trials).
	res := experiments.Figure10(20, *seed)
	var deg []float64
	if cfg.Mirrored {
		deg = res.MirroredDeg
	} else {
		deg = res.NoMirrorDeg
	}
	s := stats.Summarize(deg)
	fmt.Printf("phase error across re-locks: median %.2f°, p90 %.2f° (paper mirrored: 0.34°)\n",
		s.Median, s.P90)

	if *chain > 0 {
		fmt.Printf("\ndaisy chain (QA-screened fleet, equal legs, last hop 2 m):\n")
		fmt.Printf("%-6s %-14s %-12s %-16s\n", "hops", "total range m", "tag dBm", "per-leg cap m")
		for _, row := range experiments.DaisyChainRange(*chain, *seed) {
			fmt.Printf("%-6d %-14.1f %-12.1f %-16.1f\n",
				row.Hops, row.TotalRangeM, row.TagRxDBm, row.StabilityCapM)
		}
		fmt.Println("each hop restarts the Eq. 3/4 stability budget → near-linear growth")
	}
}
