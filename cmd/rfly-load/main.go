// rfly-load is a closed-loop load generator for rfly-serve: c workers
// each submit a mission, poll it to a terminal status, and immediately
// submit the next, until n missions have resolved. Backpressure (429)
// is honored by sleeping the advertised Retry-After (capped — this is a
// benchmark, not a patient client) and counted as a rejection. The run
// is summarized as a perf.ServeReport and written to -out
// (BENCH_serve.json), giving the bench trajectory its serving
// datapoint: throughput, p50/p95/p99 end-to-end latency, and the
// rejection rate.
//
// With -spawn the generator starts an in-process fleet + HTTP server on
// a loopback port first, so CI gets a self-contained smoke run.
//
// Usage:
//
//	rfly-load -addr host:port [-n 256] [-c 64] [-out BENCH_serve.json]
//	rfly-load -spawn [-shards 4] [-queue 64] [-batch 8] ...
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"rfly/internal/fleet"
	"rfly/internal/perf"
)

func main() {
	addr := flag.String("addr", "", "target rfly-serve address (host:port); empty requires -spawn")
	spawn := flag.Bool("spawn", false, "start an in-process rfly-serve on a loopback port")
	n := flag.Int("n", 256, "total missions to drive to completion")
	c := flag.Int("c", 64, "closed-loop worker concurrency")
	shards := flag.Int("shards", 4, "(spawn) shard count")
	queueCap := flag.Int("queue", 0, "(spawn) admission queue capacity (0 = 16×shards)")
	maxBatch := flag.Int("batch", 8, "(spawn) max batch size")
	sorties := flag.Int("sorties", 1, "(spawn) sorties per mission")
	ticks := flag.Int("ticks", 12, "(spawn) ticks per sortie")
	deadlineMs := flag.Int("deadline-ms", 0, "per-request deadline in ms (0 = none)")
	pollEvery := flag.Duration("poll", 10*time.Millisecond, "status poll interval")
	out := flag.String("out", "BENCH_serve.json", "report path")
	flag.Parse()

	var sched *fleet.Scheduler
	if *spawn {
		var err error
		sched, err = fleet.New(fleet.Config{
			Shards:         *shards,
			QueueCap:       *queueCap,
			MaxBatch:       *maxBatch,
			Sorties:        *sorties,
			TicksPerSortie: *ticks,
		})
		if err != nil {
			fatal(err)
		}
		sched.Start()
		// Report the effective fleet shape, not the flag defaults.
		*queueCap = sched.Config().QueueCap
		*maxBatch = sched.Config().MaxBatch
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fatal(err)
		}
		srv := &http.Server{Handler: fleet.NewHandler(sched)}
		go srv.Serve(ln)
		defer srv.Close()
		*addr = ln.Addr().String()
		fmt.Printf("spawned in-process rfly-serve on %s (%d shards)\n", *addr, *shards)
	}
	if *addr == "" {
		fmt.Fprintln(os.Stderr, "rfly-load: need -addr or -spawn")
		os.Exit(2)
	}
	base := "http://" + *addr

	// The worker population spreads across the region table so batching
	// has compatible traffic to coalesce, with distinct tag sets per
	// worker (tenants don't share tags).
	regions := []string{"corridor-east", "corridor-west", "dock"}

	var (
		submitted  atomic.Int64
		rejections atomic.Int64
		completed  atomic.Int64
		failed     atomic.Int64
		expired    atomic.Int64
		mu         sync.Mutex
		latencies  []float64
	)
	client := &http.Client{Timeout: 30 * time.Second}
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *c; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for submitted.Add(1) <= int64(*n) {
				region := regions[worker%len(regions)]
				lat, outcome := driveOne(client, base, region, worker, *deadlineMs, *pollEvery, &rejections)
				switch outcome {
				case "done":
					completed.Add(1)
					mu.Lock()
					latencies = append(latencies, lat)
					mu.Unlock()
				case "expired":
					expired.Add(1)
				default:
					failed.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	dur := time.Since(start)

	rep := perf.ServeReport{
		Shards:      *shards,
		QueueCap:    *queueCap,
		MaxBatch:    *maxBatch,
		Concurrency: *c,
		Requests:    *n,
		Completed:   int(completed.Load()),
		Failed:      int(failed.Load()),
		Expired:     int(expired.Load()),
		Rejections:  int(rejections.Load()),
		DurationS:   dur.Seconds(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
	}
	if attempts := int64(*n) + rejections.Load(); attempts > 0 {
		rep.RejectionRatePct = 100 * float64(rejections.Load()) / float64(attempts)
	}
	if dur > 0 {
		rep.ThroughputRPS = float64(rep.Completed) / dur.Seconds()
	}
	sort.Float64s(latencies)
	rep.LatencyP50Ms = quantile(latencies, 0.50)
	rep.LatencyP95Ms = quantile(latencies, 0.95)
	rep.LatencyP99Ms = quantile(latencies, 0.99)

	// Batching effectiveness comes from the server's own counters.
	if snap, err := fetchMetrics(client, base); err == nil {
		rep.Batches = snap.Batches
		rep.MeanBatchSize = snap.MeanBatchSize
		rep.BatchedRequests = snap.BatchedRequests
		if !*spawn {
			rep.Shards = snap.Shards
		}
	} else {
		fmt.Fprintf(os.Stderr, "rfly-load: metrics scrape failed: %v\n", err)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("%d/%d completed in %.2fs: %.1f missions/s, p50 %.0f ms, p95 %.0f ms, p99 %.0f ms\n",
		rep.Completed, rep.Requests, rep.DurationS, rep.ThroughputRPS,
		rep.LatencyP50Ms, rep.LatencyP95Ms, rep.LatencyP99Ms)
	fmt.Printf("rejections: %d (%.1f%%); batches: %d, mean size %.2f, %d requests rode shared sorties\n",
		rep.Rejections, rep.RejectionRatePct, rep.Batches, rep.MeanBatchSize, rep.BatchedRequests)
	fmt.Printf("report written to %s\n", *out)
	if rep.Completed == 0 {
		os.Exit(1)
	}
}

// driveOne pushes a single mission through submit → poll → terminal,
// retrying 429s after the advertised Retry-After. It returns the
// end-to-end latency in ms and the terminal status.
func driveOne(client *http.Client, base, region string, worker, deadlineMs int,
	pollEvery time.Duration, rejections *atomic.Int64) (float64, string) {
	body := fleet.SubmitRequest{
		Region: region,
		Tags: []fleet.TagInput{
			{ID: uint16(1 + worker%1000), X: 28 + float64(worker%3), Y: 1.5, Z: 1.0},
			{ID: uint16(1001 + worker%1000), X: 27 + float64(worker%2), Y: 1.0, Z: 1.0},
		},
		Priority:   worker % 3,
		DeadlineMs: int64(deadlineMs),
	}
	payload, _ := json.Marshal(body)
	start := time.Now()

	var id string
	for {
		resp, err := client.Post(base+"/v1/missions", "application/json", bytes.NewReader(payload))
		if err != nil {
			return 0, "failed"
		}
		switch resp.StatusCode {
		case http.StatusAccepted:
			var sr fleet.SubmitResponse
			err := json.NewDecoder(resp.Body).Decode(&sr)
			resp.Body.Close()
			if err != nil {
				return 0, "failed"
			}
			id = sr.ID
		case http.StatusTooManyRequests:
			rejections.Add(1)
			retryAfter := time.Second
			if s := resp.Header.Get("Retry-After"); s != "" {
				if v, err := time.ParseDuration(s + "s"); err == nil {
					retryAfter = v
				}
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			// Cap the wait: the estimate is for a polite client; the
			// generator's job is to keep pressure on.
			if retryAfter > 250*time.Millisecond {
				retryAfter = 250 * time.Millisecond
			}
			time.Sleep(retryAfter)
			continue
		default:
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			return 0, "failed"
		}
		break
	}

	for {
		time.Sleep(pollEvery)
		resp, err := client.Get(base + "/v1/missions/" + id)
		if err != nil {
			return 0, "failed"
		}
		var mr fleet.MissionResponse
		err = json.NewDecoder(resp.Body).Decode(&mr)
		resp.Body.Close()
		if err != nil {
			return 0, "failed"
		}
		if mr.Status.Terminal() {
			return float64(time.Since(start)) / float64(time.Millisecond), string(mr.Status)
		}
	}
}

func fetchMetrics(client *http.Client, base string) (fleet.Snapshot, error) {
	var snap fleet.Snapshot
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return snap, err
	}
	defer resp.Body.Close()
	return snap, json.NewDecoder(resp.Body).Decode(&snap)
}

// quantile interpolates the q-quantile of sorted xs.
func quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	pos := q * float64(len(xs)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return xs[lo]
	}
	frac := pos - float64(lo)
	return xs[lo]*(1-frac) + xs[hi]*frac
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rfly-load:", err)
	os.Exit(1)
}
