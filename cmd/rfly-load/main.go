// rfly-load is a closed-loop load generator for rfly-serve: c workers
// each submit a mission, poll it to a terminal status, and immediately
// submit the next, until n missions have resolved. Backpressure (429)
// is honored by sleeping the advertised Retry-After (capped — this is a
// benchmark, not a patient client) and counted as a rejection. The run
// is summarized as a perf.ServeReport and written to -out
// (BENCH_serve.json), giving the bench trajectory its serving
// datapoint: throughput, p50/p95/p99 end-to-end latency, and the
// rejection rate.
//
// With -spawn the generator starts an in-process fleet + HTTP server on
// a loopback port first, so CI gets a self-contained smoke run.
//
// With -federation the generator instead sweeps the federated tier's
// scaling curve: it spawns 1-, 2-, and 4-node in-process fleets, fronts
// each with a federation coordinator, drives the same closed-loop
// workload through the coordinator's HTTP API, and writes the combined
// perf.FederationReport to -out (BENCH_federation.json).
//
// Usage:
//
//	rfly-load -addr host:port [-n 256] [-c 64] [-out BENCH_serve.json]
//	rfly-load -spawn [-shards 4] [-queue 64] [-batch 8] ...
//	rfly-load -federation [-n 48] [-c 8] [-out BENCH_federation.json]
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"rfly/internal/federation"
	"rfly/internal/fleet"
	"rfly/internal/perf"
)

func main() {
	addr := flag.String("addr", "", "target rfly-serve address (host:port); empty requires -spawn")
	spawn := flag.Bool("spawn", false, "start an in-process rfly-serve on a loopback port")
	n := flag.Int("n", 256, "total missions to drive to completion")
	c := flag.Int("c", 64, "closed-loop worker concurrency")
	shards := flag.Int("shards", 4, "(spawn) shard count")
	queueCap := flag.Int("queue", 0, "(spawn) admission queue capacity (0 = 16×shards)")
	maxBatch := flag.Int("batch", 8, "(spawn) max batch size")
	sorties := flag.Int("sorties", 1, "(spawn) sorties per mission")
	ticks := flag.Int("ticks", 12, "(spawn) ticks per sortie")
	deadlineMs := flag.Int("deadline-ms", 0, "per-request deadline in ms (0 = none)")
	pollEvery := flag.Duration("poll", 10*time.Millisecond, "status poll interval")
	fed := flag.Bool("federation", false, "sweep 1-, 2-, and 4-node federated fleets instead of one server")
	out := flag.String("out", "", "report path (default BENCH_serve.json, or BENCH_federation.json with -federation)")
	flag.Parse()

	if *out == "" {
		*out = "BENCH_serve.json"
		if *fed {
			*out = "BENCH_federation.json"
		}
	}
	if *fed {
		runFederation(*n, *c, *shards, *queueCap, *maxBatch, *sorties, *ticks,
			*deadlineMs, *pollEvery, *out)
		return
	}

	var sched *fleet.Scheduler
	if *spawn {
		var err error
		sched, err = fleet.New(fleet.Config{
			Shards:         *shards,
			QueueCap:       *queueCap,
			MaxBatch:       *maxBatch,
			Sorties:        *sorties,
			TicksPerSortie: *ticks,
		})
		if err != nil {
			fatal(err)
		}
		sched.Start()
		// Report the effective fleet shape, not the flag defaults.
		*queueCap = sched.Config().QueueCap
		*maxBatch = sched.Config().MaxBatch
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fatal(err)
		}
		srv := &http.Server{Handler: fleet.NewHandler(sched)}
		go srv.Serve(ln)
		defer srv.Close()
		*addr = ln.Addr().String()
		fmt.Printf("spawned in-process rfly-serve on %s (%d shards)\n", *addr, *shards)
	}
	if *addr == "" {
		fmt.Fprintln(os.Stderr, "rfly-load: need -addr or -spawn")
		os.Exit(2)
	}
	base := "http://" + *addr

	// The worker population spreads across the region table so batching
	// has compatible traffic to coalesce, with distinct tag sets per
	// worker (tenants don't share tags).
	regions := []string{"corridor-east", "corridor-west", "dock"}

	var (
		submitted  atomic.Int64
		rejections atomic.Int64
		completed  atomic.Int64
		failed     atomic.Int64
		expired    atomic.Int64
		mu         sync.Mutex
		latencies  []float64
	)
	client := &http.Client{Timeout: 30 * time.Second}
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *c; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for submitted.Add(1) <= int64(*n) {
				region := regions[worker%len(regions)]
				lat, outcome := driveOne(client, base, region, worker, *deadlineMs, *pollEvery, &rejections)
				switch outcome {
				case "done":
					completed.Add(1)
					mu.Lock()
					latencies = append(latencies, lat)
					mu.Unlock()
				case "expired":
					expired.Add(1)
				default:
					failed.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	dur := time.Since(start)

	rep := perf.ServeReport{
		Shards:      *shards,
		QueueCap:    *queueCap,
		MaxBatch:    *maxBatch,
		Concurrency: *c,
		Requests:    *n,
		Completed:   int(completed.Load()),
		Failed:      int(failed.Load()),
		Expired:     int(expired.Load()),
		Rejections:  int(rejections.Load()),
		DurationS:   dur.Seconds(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
	}
	if attempts := int64(*n) + rejections.Load(); attempts > 0 {
		rep.RejectionRatePct = 100 * float64(rejections.Load()) / float64(attempts)
	}
	if dur > 0 {
		rep.ThroughputRPS = float64(rep.Completed) / dur.Seconds()
	}
	sort.Float64s(latencies)
	rep.LatencyP50Ms = quantile(latencies, 0.50)
	rep.LatencyP95Ms = quantile(latencies, 0.95)
	rep.LatencyP99Ms = quantile(latencies, 0.99)

	// Batching effectiveness comes from the server's own counters.
	if snap, err := fetchMetrics(client, base); err == nil {
		rep.Batches = snap.Batches
		rep.MeanBatchSize = snap.MeanBatchSize
		rep.BatchedRequests = snap.BatchedRequests
		if !*spawn {
			rep.Shards = snap.Shards
		}
	} else {
		fmt.Fprintf(os.Stderr, "rfly-load: metrics scrape failed: %v\n", err)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("%d/%d completed in %.2fs: %.1f missions/s, p50 %.0f ms, p95 %.0f ms, p99 %.0f ms\n",
		rep.Completed, rep.Requests, rep.DurationS, rep.ThroughputRPS,
		rep.LatencyP50Ms, rep.LatencyP95Ms, rep.LatencyP99Ms)
	fmt.Printf("rejections: %d (%.1f%%); batches: %d, mean size %.2f, %d requests rode shared sorties\n",
		rep.Rejections, rep.RejectionRatePct, rep.Batches, rep.MeanBatchSize, rep.BatchedRequests)
	fmt.Printf("report written to %s\n", *out)
	if rep.Completed == 0 {
		os.Exit(1)
	}
}

// driveOne pushes a single mission through submit → poll → terminal,
// retrying 429s after the advertised Retry-After. It returns the
// end-to-end latency in ms and the terminal status.
func driveOne(client *http.Client, base, region string, worker, deadlineMs int,
	pollEvery time.Duration, rejections *atomic.Int64) (float64, string) {
	body := fleet.SubmitRequest{
		Region: region,
		Tags: []fleet.TagInput{
			{ID: uint16(1 + worker%1000), X: 28 + float64(worker%3), Y: 1.5, Z: 1.0},
			{ID: uint16(1001 + worker%1000), X: 27 + float64(worker%2), Y: 1.0, Z: 1.0},
		},
		Priority:   worker % 3,
		DeadlineMs: int64(deadlineMs),
	}
	payload, _ := json.Marshal(body)
	start := time.Now()

	var id string
	for {
		resp, err := client.Post(base+"/v1/missions", "application/json", bytes.NewReader(payload))
		if err != nil {
			return 0, "failed"
		}
		switch resp.StatusCode {
		case http.StatusAccepted:
			var sr fleet.SubmitResponse
			err := json.NewDecoder(resp.Body).Decode(&sr)
			resp.Body.Close()
			if err != nil {
				return 0, "failed"
			}
			id = sr.ID
		case http.StatusTooManyRequests:
			rejections.Add(1)
			retryAfter := time.Second
			if s := resp.Header.Get("Retry-After"); s != "" {
				if v, err := time.ParseDuration(s + "s"); err == nil {
					retryAfter = v
				}
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			// Cap the wait: the estimate is for a polite client; the
			// generator's job is to keep pressure on.
			if retryAfter > 250*time.Millisecond {
				retryAfter = 250 * time.Millisecond
			}
			time.Sleep(retryAfter)
			continue
		case http.StatusServiceUnavailable:
			// The federation coordinator 503s when every node shed the
			// work; a closed-loop generator's job is to keep pressure
			// on, so back off briefly and resubmit.
			rejections.Add(1)
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			time.Sleep(100 * time.Millisecond)
			continue
		default:
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			return 0, "failed"
		}
		break
	}

	for {
		time.Sleep(pollEvery)
		resp, err := client.Get(base + "/v1/missions/" + id)
		if err != nil {
			return 0, "failed"
		}
		var mr fleet.MissionResponse
		err = json.NewDecoder(resp.Body).Decode(&mr)
		resp.Body.Close()
		if err != nil {
			return 0, "failed"
		}
		if mr.Status.Terminal() {
			return float64(time.Since(start)) / float64(time.Millisecond), string(mr.Status)
		}
	}
}

func fetchMetrics(client *http.Client, base string) (fleet.Snapshot, error) {
	var snap fleet.Snapshot
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return snap, err
	}
	defer resp.Body.Close()
	return snap, json.NewDecoder(resp.Body).Decode(&snap)
}

// quantile interpolates the q-quantile of sorted xs.
func quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	pos := q * float64(len(xs)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return xs[lo]
	}
	frac := pos - float64(lo)
	return xs[lo]*(1-frac) + xs[hi]*frac
}

// fleetSizes is the scaling curve the federation benchmark sweeps.
var fleetSizes = []int{1, 2, 4}

// runFederation drives the same closed-loop workload through 1-, 2-,
// and 4-node federated fleets and writes the combined scaling curve.
func runFederation(n, c, shards, queueCap, maxBatch, sorties, ticks, deadlineMs int,
	pollEvery time.Duration, out string) {
	rep := perf.FederationReport{
		Requests:      n,
		Concurrency:   c,
		ShardsPerNode: shards,
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
	}
	for _, size := range fleetSizes {
		pt, err := driveFleet(size, n, c, shards, queueCap, maxBatch, sorties, ticks,
			deadlineMs, pollEvery)
		if err != nil {
			fatal(err)
		}
		if len(rep.Fleets) == 0 {
			pt.SpeedupVsSolo = 1
		} else if solo := rep.Fleets[0].ThroughputRPS; solo > 0 {
			pt.SpeedupVsSolo = pt.ThroughputRPS / solo
		}
		rep.Fleets = append(rep.Fleets, pt)
		fmt.Printf("%d node(s): %d/%d completed in %.2fs, %.1f missions/s (%.2fx solo), p50 %.0f ms, p99 %.0f ms, %d spilled\n",
			pt.Nodes, pt.Completed, n, pt.DurationS, pt.ThroughputRPS, pt.SpeedupVsSolo,
			pt.LatencyP50Ms, pt.LatencyP99Ms, pt.Spilled)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("report written to %s\n", out)
	for _, pt := range rep.Fleets {
		if pt.Completed == 0 {
			os.Exit(1)
		}
	}
}

// driveFleet spawns size in-process fleet nodes behind a federation
// coordinator, pushes the closed-loop workload through the
// coordinator's HTTP API, and returns the point's measurements.
func driveFleet(size, n, c, shards, queueCap, maxBatch, sorties, ticks, deadlineMs int,
	pollEvery time.Duration) (perf.FederationPoint, error) {
	var pt perf.FederationPoint
	pt.Nodes = size

	var (
		nodeURLs []string
		scheds   []*fleet.Scheduler
		servers  []*http.Server
	)
	defer func() {
		for _, srv := range servers {
			srv.Close()
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		for _, s := range scheds {
			s.Stop(ctx)
		}
	}()
	for i := 0; i < size; i++ {
		sched, err := fleet.New(fleet.Config{
			Shards:         shards,
			QueueCap:       queueCap,
			MaxBatch:       maxBatch,
			Sorties:        sorties,
			TicksPerSortie: ticks,
		})
		if err != nil {
			return pt, err
		}
		sched.Start()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return pt, err
		}
		srv := &http.Server{Handler: fleet.NewHandler(sched)}
		go srv.Serve(ln)
		scheds = append(scheds, sched)
		servers = append(servers, srv)
		nodeURLs = append(nodeURLs, "http://"+ln.Addr().String())
	}

	// Generous detector timings: the benchmark saturates the CPU with
	// sorties, and a slow /metrics answer must read as load, not death.
	coord, err := federation.New(federation.Config{
		Nodes:          nodeURLs,
		Seed:           1,
		Heartbeat:      250 * time.Millisecond,
		PollEvery:      pollEvery,
		RequestTimeout: 30 * time.Second,
	})
	if err != nil {
		return pt, err
	}
	coord.Start()
	defer coord.Stop()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return pt, err
	}
	fsrv := &http.Server{Handler: federation.NewHandler(coord)}
	go fsrv.Serve(ln)
	defer fsrv.Close()
	base := "http://" + ln.Addr().String()

	regions := []string{"corridor-east", "corridor-west", "dock"}
	var (
		submitted  atomic.Int64
		rejections atomic.Int64
		completed  atomic.Int64
		failed     atomic.Int64
		mu         sync.Mutex
		latencies  []float64
	)
	client := &http.Client{Timeout: 60 * time.Second}
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < c; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for submitted.Add(1) <= int64(n) {
				region := regions[worker%len(regions)]
				lat, outcome := driveOne(client, base, region, worker, deadlineMs, pollEvery, &rejections)
				if outcome == "done" {
					completed.Add(1)
					mu.Lock()
					latencies = append(latencies, lat)
					mu.Unlock()
				} else {
					failed.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	dur := time.Since(start)

	pt.Completed = int(completed.Load())
	pt.Failed = int(failed.Load())
	pt.DurationS = dur.Seconds()
	if dur > 0 {
		pt.ThroughputRPS = float64(pt.Completed) / dur.Seconds()
	}
	sort.Float64s(latencies)
	pt.LatencyP50Ms = quantile(latencies, 0.50)
	pt.LatencyP95Ms = quantile(latencies, 0.95)
	pt.LatencyP99Ms = quantile(latencies, 0.99)
	snap := coord.Metrics().Snapshot()
	pt.Spilled = snap.Spilled
	pt.Replicated = snap.Replicated
	pt.Failovers = snap.Failovers
	return pt, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rfly-load:", err)
	os.Exit(1)
}
