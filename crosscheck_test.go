package rfly_test

// Cross-check between the two fidelity levels: the link-budget engine
// (internal/sim) predicts the reader's post-integration SNR analytically;
// the waveform rig measures it from actual samples through the same relay
// hardware. The two must agree to within a handful of dB — this is the
// test that licenses running the paper's big sweeps on the budget level.

import (
	"math"
	"testing"

	"rfly/internal/epc"
	"rfly/internal/geom"
	"rfly/internal/signal"
	"rfly/internal/sim"
	"rfly/internal/world"
)

// budgetSNR predicts the reader SNR for the rig's geometry with the sim
// engine, aligned to the rig's hardware: 0 dBm reader, no antenna gains,
// and the rig relay's fixed (minimum-VGA) gains.
func budgetSNR(t *testing.T, w *waveformRig) float64 {
	t.Helper()
	d := sim.New(sim.Config{
		Scene:     world.OpenSpace(),
		ReaderPos: geom.P2(0, 0),
		UseRelay:  true,
		RelayPos:  geom.P2(w.dRR, 0),
	}, 9000)
	d.Reader.Cfg.TxPowerDBm = w.rd.Cfg.TxPowerDBm
	d.Reader.Cfg.AntennaGainDB = 0
	// Align the budget's gains with the rig relay's actual settings.
	d.Gains.DownlinkGainDB = w.rl.DownlinkGainDB()
	d.Gains.UplinkGainDB = w.rl.UplinkGainDB()
	tg := d.AddTag(epc.NewEPC96(0xC4, 0, 0, 0, 0, 0), geom.P2(w.dRR+w.dRT, 0))
	b := d.LinkBudget(tg)
	if !b.Powered && b.TagRxDBm > -15 {
		t.Fatalf("budget inconsistency: %+v", b)
	}
	// The budget path includes 2 dBi relay antennas on four traversals
	// and ignores them at the reader; the rig has no antenna gains at
	// all. Remove the 4 × 2 dBi to compare like with like.
	return b.SNRdB - 8
}

func TestBudgetMatchesWaveformSNR(t *testing.T) {
	w := newWaveformRig(t, 6, 1.0, 90)
	// Thermal noise at the reader input, as the budget assumes.
	w.noise = signal.ThermalNoiseWatts(w.fs, w.rd.Cfg.NoiseFigureDB)
	_, dec := w.runQuery(t, epc.Query{Q: 0})
	if dec == nil {
		t.Fatal("no reply")
	}
	measured := dec.SNRdB
	predicted := budgetSNR(t, w)
	if math.Abs(measured-predicted) > 8 {
		t.Fatalf("waveform SNR %.1f dB vs budget %.1f dB: fidelity levels diverge", measured, predicted)
	}
}

func TestBudgetAndWaveformAgreeOnTrend(t *testing.T) {
	// Doubling the relay→tag distance costs ~12 dB round trip on both
	// levels.
	snrAt := func(dRT float64, seed uint64) (float64, float64) {
		w := newWaveformRig(t, 6, dRT, seed)
		w.noise = signal.ThermalNoiseWatts(w.fs, w.rd.Cfg.NoiseFigureDB)
		_, dec := w.runQuery(t, epc.Query{Q: 0})
		if dec == nil {
			t.Fatal("no reply")
		}
		return dec.SNRdB, budgetSNR(t, w)
	}
	m1, p1 := snrAt(0.6, 91)
	m2, p2 := snrAt(1.2, 92)
	mDrop := m1 - m2
	pDrop := p1 - p2
	if mDrop < 6 || mDrop > 18 {
		t.Fatalf("waveform distance penalty %.1f dB, expected ≈12", mDrop)
	}
	if math.Abs(mDrop-pDrop) > 5 {
		t.Fatalf("distance trends diverge: waveform %.1f dB vs budget %.1f dB", mDrop, pDrop)
	}
}
