package rfly_test

// End-to-end waveform integration tests: every byte that flows is a real
// sample. A reader synthesizes a PIE query waveform; the relay's downlink
// path (mixers, low-pass, gain chain) forwards it on the shifted carrier;
// the tag demodulates the *envelope* of what actually arrives, runs its
// Gen2 state machine, and backscatters an FM0 waveform by modulating the
// incident carrier; the relay's uplink path forwards that back; and the
// reader's coherent decoder recovers the bits and the channel phase.
//
// These tests pin the system-level contracts the paper's design rests on:
// protocol transparency through the relay (§3), and phase faithfulness of
// the full loop (§4.3) — the recovered phase must track tag displacement
// at the wavelength scale.

import (
	"math"
	"math/cmplx"
	"testing"

	"rfly/internal/epc"
	"rfly/internal/geom"
	"rfly/internal/reader"
	"rfly/internal/relay"
	"rfly/internal/rng"
	"rfly/internal/signal"
	"rfly/internal/tag"
)

// bitsVal decodes a bit vector whose width the test controls; any error
// is a test bug, not a protocol condition.
func bitsVal(t testing.TB, b epc.Bits) uint64 {
	t.Helper()
	v, err := b.Uint()
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// waveformRig wires one reader, one relay, and one tag at explicit
// geometry, with free-space scalar channels between them.
type waveformRig struct {
	rd    *reader.Reader
	rl    *relay.Relay
	tg    *tag.Tag
	fs    float64
	f     float64 // absolute reader carrier
	f2    float64 // shifted carrier
	dRR   float64 // reader↔relay distance
	dRT   float64 // relay↔tag distance
	noise float64 // AWGN power at each receive input (0 = clean)
	src   *rng.Source
}

func newWaveformRig(t testing.TB, dRR, dRT float64, seed uint64) *waveformRig {
	t.Helper()
	src := rng.New(seed)
	cfg := relay.DefaultConfig()
	cfg.SynthPPM = 0 // CFO-free for phase assertions; Figure10 covers CFO
	rl := relay.New(cfg, src.Split("relay"))
	rl.Lock(0)
	// Program the VGAs as a deployed relay would (§6.1); without this the
	// uplink has 0 dB gain and thermal-noise tests are hopeless.
	iso, err := rl.MeasureAll(src.Split("iso"))
	if err != nil {
		t.Fatal(err)
	}
	rl.ProgramGains(iso)
	rdCfg := reader.DefaultConfig()
	rdCfg.Fs = cfg.Fs
	rdCfg.TxPowerDBm = 0 // keep the PA linear for clean phase assertions
	rd := reader.New(rdCfg, src.Split("reader"))
	tg := tag.New(epc.NewEPC96(0xE2E2, 1, 2, 3, 4, 5), geom.P2(0, 0),
		tag.DefaultConfig(), src.Split("tag"))
	return &waveformRig{
		rd: rd, rl: rl, tg: tg,
		fs: cfg.Fs, f: cfg.CenterFreq, f2: cfg.CenterFreq + cfg.ShiftHz,
		dRR: dRR, dRT: dRT,
		src: src.Split("noise"),
	}
}

// chan1 applies a one-way free-space channel at carrier fc over distance d
// to a waveform: amplitude λ/(4πd), phase −2πfc·d/c.
func chanApply(x []complex128, fc, d float64) []complex128 {
	lambda := signal.C / fc
	amp := lambda / (4 * math.Pi * math.Max(d, 0.1))
	g := cmplx.Rect(amp, -2*math.Pi*fc*d/signal.C)
	out := make([]complex128, len(x))
	for i := range x {
		out[i] = x[i] * g
	}
	return out
}

// runQuery pushes one reader command through the full loop and returns the
// tag's decoded view of the command plus the reader's decode of the tag's
// backscatter (nil if the tag stayed silent).
func (w *waveformRig) runQuery(t testing.TB, cmd epc.Command) (epc.Command, *reader.Decode) {
	t.Helper()
	// 1. Reader TX waveform, through the air to the relay.
	tx := w.rd.CommandWaveform(cmd)
	atRelay := chanApply(tx, w.f, w.dRR)
	// 2. Relay downlink (output rides the shifted carrier).
	dl, err := w.rl.ForwardDownlink(atRelay, 0)
	if err != nil {
		t.Fatal(err)
	}
	// 3. Through the air to the tag, at the shifted carrier.
	atTag := chanApply(dl, w.f2, w.dRT)
	if w.noise > 0 {
		signal.AWGN(atTag, w.noise, w.src.Norm)
	}
	// 4. The tag slices the envelope and decodes the command.
	env := make([]float64, len(atTag))
	for i, v := range atTag {
		env[i] = cmplx.Abs(v)
	}
	dec, err := epc.DecodeEnvelope(env, w.fs)
	if err != nil {
		t.Fatalf("tag could not slice the envelope: %v", err)
	}
	gotCmd, err := epc.Decode(dec.Bits)
	if err != nil {
		t.Fatalf("tag could not parse the command: %v", err)
	}
	// 5. State machine; a reply becomes chips modulating the incident
	// carrier during the trailing CW window.
	rep := w.tg.Handle(gotCmd)
	if rep == nil {
		return gotCmd, nil
	}
	chips := epc.FM0Encode(rep.Bits)
	mod := tag.Waveform(chips, w.tg.Cfg.BackscatterCoeff, w.fs, 500e3)
	bs := make([]complex128, len(atTag))
	// Inside the trailing CW, leaving room for the uplink filters' group
	// delay so the reply's tail stays inside the capture.
	start := len(atTag) - len(mod) - 400
	if start < 0 {
		t.Fatalf("reply (%d samples) does not fit the CW tail (%d)", len(mod), len(atTag))
	}
	for i, m := range mod {
		bs[start+i] = atTag[start+i] * m * 2 // Waveform carries coeff/2
	}
	// 6. Back through the air, the relay uplink, and the air again.
	atRelayUp := chanApply(bs, w.f2, w.dRT)
	ul, err := w.rl.ForwardUplink(atRelayUp, 0)
	if err != nil {
		t.Fatal(err)
	}
	atReader := chanApply(ul, w.f, w.dRR)
	if w.noise > 0 {
		signal.AWGN(atReader, w.noise, w.src.Norm)
	}
	// 7. Coherent decode, with the reply length known from the protocol
	// phase (the real reader knows what it just asked for).
	decBS, err := w.rd.DecodeBackscatter(atReader, 500e3, start-2000, start+2000, len(rep.Bits))
	if err != nil {
		t.Fatalf("reader decode failed: %v", err)
	}
	return gotCmd, decBS
}

func TestE2EQueryTransparentThroughRelay(t *testing.T) {
	w := newWaveformRig(t, 8, 1.5, 1)
	sent := epc.Query{DR: epc.DR64, M: epc.FM0Mod, Session: epc.S0, Q: 0}
	got, dec := w.runQuery(t, sent)
	q, ok := got.(epc.Query)
	if !ok || q != sent {
		t.Fatalf("tag saw %+v, reader sent %+v", got, sent)
	}
	if dec == nil {
		t.Fatal("tag did not reply to a Q=0 query")
	}
	// The RN16 the reader decodes must be the tag's.
	if uint16(bitsVal(t, dec.Bits)) != w.tg.RN16() {
		t.Fatalf("decoded RN16 %04X, tag holds %04X", bitsVal(t, dec.Bits), w.tg.RN16())
	}
}

func TestE2EFullInventoryHandshake(t *testing.T) {
	w := newWaveformRig(t, 6, 1.0, 2)
	_, rn := w.runQuery(t, epc.Query{Q: 0})
	if rn == nil {
		t.Fatal("no RN16")
	}
	// ACK with the decoded RN16; expect the EPC back, over the waveform.
	_, epcDec := w.runQuery(t, epc.ACK{RN16: uint16(bitsVal(t, rn.Bits))})
	if epcDec == nil {
		t.Fatal("no EPC reply")
	}
	gotEPC, err := epc.ParseTagReply(epcDec.Bits)
	if err != nil {
		t.Fatalf("EPC reply invalid: %v", err)
	}
	if !gotEPC.Equal(w.tg.EPC) {
		t.Fatalf("EPC %v, want %v", gotEPC, w.tg.EPC)
	}
	if w.tg.State() != tag.StateAcknowledged {
		t.Fatalf("tag state %v", w.tg.State())
	}
}

func TestE2EPhaseTracksTagDistance(t *testing.T) {
	// Move the tag by λ/8 at f2; the round-trip phase through the relay
	// must rotate by 4π·Δd·f2/c = π/2, proving the loop is
	// phase-faithful end to end (the property localization needs).
	const d0 = 1.2
	lambda := signal.C / (915e6 + relay.DefaultConfig().ShiftHz)
	delta := lambda / 8

	phase := func(dRT float64, seed uint64) float64 {
		w := newWaveformRig(t, 7, dRT, seed)
		_, dec := w.runQuery(t, epc.Query{Q: 0})
		if dec == nil {
			t.Fatal("no reply")
		}
		return cmplx.Phase(dec.H)
	}
	// Same seed → same synthesizer phases → the only change is geometry.
	p0 := phase(d0, 77)
	p1 := phase(d0+delta, 77)
	got := signal.WrapPhase(p0 - p1) // longer path → more negative phase
	want := 4 * math.Pi * delta * (915e6 + relay.DefaultConfig().ShiftHz) / signal.C
	if math.Abs(signal.WrapPhase(got-want)) > 0.06 {
		t.Fatalf("phase shift %.4f rad, want %.4f (λ/8 round trip = π/2)", got, want)
	}
}

func TestE2ENoisyChannelStillDecodes(t *testing.T) {
	w := newWaveformRig(t, 6, 1.0, 3)
	// Noise calibrated well below the backscatter power at these
	// distances but far above numerical precision.
	w.noise = 1e-19
	_, dec := w.runQuery(t, epc.Query{Q: 0})
	if dec == nil {
		t.Fatal("no reply under noise")
	}
	if dec.SNRdB < 6 {
		t.Fatalf("decode SNR = %v dB", dec.SNRdB)
	}
}

func TestE2ESelectThenQueryFiltering(t *testing.T) {
	// A Select matching the tag's EPC prefix flips its inventoried flag to
	// A; the tag then answers an A-target query — all over waveforms.
	w := newWaveformRig(t, 6, 1.0, 4)
	mask := w.tg.EPC.Bits()[:12]
	sel := epc.Select{Target: 0, Action: 0, MemBank: epc.BankEPC, Pointer: 0, Mask: mask}
	if _, dec := w.runQuery(t, sel); dec != nil {
		t.Fatal("Select elicited a backscatter reply")
	}
	if _, dec := w.runQuery(t, epc.Query{Q: 0, Session: epc.S0}); dec == nil {
		t.Fatal("selected tag did not answer")
	}
	// A non-matching Select sets the flag to B: the tag goes silent for
	// A-target queries.
	bad := append(epc.Bits(nil), mask...)
	bad[0] ^= 1
	w.tg.ClearInventory()
	w.runQuery(t, epc.Select{Target: 0, Action: 0, MemBank: epc.BankEPC, Pointer: 0, Mask: bad})
	if _, dec := w.runQuery(t, epc.Query{Q: 0, Session: epc.S0}); dec != nil {
		t.Fatal("deselected tag answered an A-target query")
	}
}
